"""Streaming metric sketches: serving summaries in bounded memory.

A retained :class:`~repro.serving.trace.ServingTrace` holds one
:class:`~repro.serving.trace.RequestRecord` per request, so its memory grows
linearly with trace length — fine for a 24-request sweep row, fatal for the
ROADMAP's "millions of users".  This module provides the streaming
counterpart: every metric the serving summary reports is folded into O(1)
state per metric as records are observed, and the records themselves are
dropped.

* :class:`P2Quantile` — the P² piecewise-parabolic online quantile
  estimator of Jain & Chlamtac (1985): five markers per quantile, exact
  below five observations, O(1) update and memory after that;
* :class:`StreamingPercentiles` — a bank of :class:`P2Quantile` mirroring
  :func:`repro.evaluation.metrics.percentiles`;
* :class:`StreamingMean` / :class:`StreamingGoodput` — exact count/mean and
  SLO-conditioned goodput accumulators;
* :class:`StreamingTrace` — the ``record_mode="streaming"`` stand-in for
  :class:`~repro.serving.trace.ServingTrace`: same summary surface
  (``num_requests``, ``duration``, ``throughput``, ``*_percentiles``,
  ``goodput``, ``summary``), no retained records.

Exactness contract: counts, token totals, duration, throughput, mean
queueing delay, and goodput are *exact* (identical float arithmetic to the
retained trace, records observed in the same order).  Percentiles are P²
*estimates* — exact for traces of fewer than five requests, approximate
beyond that — so comparisons against retained traces belong inside sketch
error bounds (see ``tests/test_sketches.py`` and the equivalence tests in
``tests/test_serving_events.py``).

Because SLO compliance must be judged the moment a record is observed (the
record is then gone), a streaming trace fixes its goodput SLOs at
construction; :meth:`StreamingTrace.goodput` answers only for those SLOs
(or for the unconstrained case, which needs no per-record state).
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from repro._common import ConfigurationError
from repro.serving.trace import RequestRecord, normalize_class_slos

#: Percentile ranks tracked by default — the ones ``summary()`` reports.
DEFAULT_QUANTILES = (50, 90, 99)


class P2Quantile:
    """P² online estimator of a single quantile (Jain & Chlamtac, 1985).

    Keeps five markers whose heights approximate the quantile curve: the
    minimum, the maximum, the target quantile ``q``, and the midpoints
    ``q/2`` and ``(1+q)/2``.  Each observation shifts marker positions and
    adjusts heights by a piecewise-parabolic (hence P²) interpolation, so
    the estimate converges without retaining observations.  Below five
    observations the exact values are kept and the quantile is computed
    directly (matching :func:`numpy.percentile`).
    """

    __slots__ = ("quantile", "count", "_markers", "_positions", "_desired",
                 "_rates")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(
                f"quantile must lie strictly in (0, 1), got {quantile!r}"
            )
        self.quantile = float(quantile)
        self.count = 0
        self._markers: list[float] = []
        self._positions: list[float] | None = None
        self._desired: list[float] | None = None
        q = self.quantile
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            # NaN poisons every marker comparison silently (all orderings
            # are False), so the sketch would drift without any error —
            # reject it at the door instead.
            raise ConfigurationError(
                "cannot observe NaN: P² marker comparisons are undefined"
            )
        self.count += 1
        markers = self._markers
        if self._positions is None:
            bisect.insort(markers, value)
            if len(markers) == 5:
                q = self.quantile
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
            return
        positions = self._positions
        if value < markers[0]:
            markers[0] = value
            cell = 0
        elif value >= markers[4]:
            markers[4] = value
            cell = 3
        else:
            cell = 0
            while value >= markers[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        rates = self._rates
        for i in range(1, 5):
            desired[i] += rates[i]
        for i in (1, 2, 3):
            gap = desired[i] - positions[i]
            if ((gap >= 1.0 and positions[i + 1] - positions[i] > 1.0)
                    or (gap <= -1.0 and positions[i - 1] - positions[i] < -1.0)):
                step = 1.0 if gap >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                # P² falls back to linear interpolation whenever the
                # parabolic candidate would break marker monotonicity.
                if not markers[i - 1] < candidate < markers[i + 1]:
                    candidate = self._linear(i, step)
                markers[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        markers, positions = self._markers, self._positions
        outer = step / (positions[i + 1] - positions[i - 1])
        above = ((positions[i] - positions[i - 1] + step)
                 * (markers[i + 1] - markers[i])
                 / (positions[i + 1] - positions[i]))
        below = ((positions[i + 1] - positions[i] - step)
                 * (markers[i] - markers[i - 1])
                 / (positions[i] - positions[i - 1]))
        return markers[i] + outer * (above + below)

    def _linear(self, i: int, step: float) -> float:
        markers, positions = self._markers, self._positions
        j = i + int(step)
        return (markers[i] + step * (markers[j] - markers[i])
                / (positions[j] - positions[i]))

    @property
    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self.count == 0:
            raise ConfigurationError(
                "the quantile of an empty stream is undefined"
            )
        if self._positions is None:
            # Fewer than five observations: exact, matching np.percentile.
            return float(np.percentile(self._markers, self.quantile * 100.0))
        return self._markers[2]


class StreamingPercentiles:
    """A bank of :class:`P2Quantile` keyed like ``metrics.percentiles``."""

    __slots__ = ("qs", "_estimators")

    def __init__(self, qs=DEFAULT_QUANTILES) -> None:
        qs = tuple(float(q) for q in qs)
        if not qs:
            raise ConfigurationError("need at least one percentile rank")
        for q in qs:
            if not 0.0 < q < 100.0:
                raise ConfigurationError(
                    f"percentile ranks must lie in (0, 100), got {q!r}"
                )
        self.qs = qs
        self._estimators = [P2Quantile(q / 100.0) for q in qs]

    def observe(self, value: float) -> None:
        for estimator in self._estimators:
            estimator.observe(value)

    @property
    def count(self) -> int:
        return self._estimators[0].count

    def values(self) -> dict[float, float]:
        """``{rank: estimate}`` like :func:`~repro.evaluation.metrics.percentiles`
        (``{}`` when nothing was observed, matching the empty-trace shape)."""
        if self.count == 0:
            return {}
        return {q: estimator.value
                for q, estimator in zip(self.qs, self._estimators)}


class StreamingMean:
    """Exact running count/sum/mean (mean 0.0 when nothing observed)."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += float(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


class StreamingGoodput:
    """Tokens from SLO-compliant requests, folded record by record.

    Mirrors :func:`repro.evaluation.metrics.serving_goodput` (a request is
    compliant when ``ttft <= ttft_slo_s`` and ``tpot <= tpot_slo_s``; a
    ``None`` SLO leaves that dimension unconstrained) — but the judgment is
    made when each record is observed, so the SLOs are fixed up front.
    """

    __slots__ = ("ttft_slo_s", "tpot_slo_s", "observed", "compliant",
                 "good_tokens")

    def __init__(self, ttft_slo_s: float | None = None,
                 tpot_slo_s: float | None = None) -> None:
        self.ttft_slo_s = ttft_slo_s
        self.tpot_slo_s = tpot_slo_s
        self.observed = 0
        self.compliant = 0
        self.good_tokens = 0

    def observe(self, record: RequestRecord) -> None:
        self.observed += 1
        if self.ttft_slo_s is not None and record.ttft > self.ttft_slo_s:
            return
        if self.tpot_slo_s is not None and record.tpot > self.tpot_slo_s:
            return
        self.compliant += 1
        self.good_tokens += record.output_len

    def goodput(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return self.good_tokens / duration_s


class StreamingTrace:
    """Bounded-memory stand-in for :class:`~repro.serving.trace.ServingTrace`.

    Selected by ``record_mode="streaming"`` on
    :meth:`~repro.serving.engine.ContinuousBatchingEngine.serve` and
    :meth:`~repro.cluster.group.ReplicaGroup.serve`.  Implements the same
    summary surface — ``num_requests``, ``duration``, ``generated_tokens``,
    ``throughput``, ``mean_queueing_delay``, ``*_percentiles``, ``goodput``,
    ``summary`` — over O(1) state, so memory does not grow with trace
    length.  There is deliberately no ``records`` attribute: anything that
    needs per-request records needs ``record_mode="full"``.

    ``quantiles=None`` disables percentile sketches entirely (the
    percentile methods then return ``{}``); the cluster layer uses this for
    its per-replica sinks, whose summaries only need counts and totals.
    """

    def __init__(self, system: str, model: str, metadata: dict | None = None,
                 quantiles=DEFAULT_QUANTILES,
                 ttft_slo_s: float | None = None,
                 tpot_slo_s: float | None = None,
                 class_slos: dict | None = None) -> None:
        self.system = system
        self.model = model
        self.metadata = dict(metadata or {})
        self.ttft_slo_s = ttft_slo_s
        self.tpot_slo_s = tpot_slo_s
        self.class_slos = normalize_class_slos(class_slos)
        quantiles = tuple(quantiles) if quantiles else None
        if quantiles is not None:
            self._ttft = StreamingPercentiles(quantiles)
            self._tpot = StreamingPercentiles(quantiles)
            self._latency = StreamingPercentiles(quantiles)
        else:
            self._ttft = self._tpot = self._latency = None
        self._quantiles = quantiles
        self._count = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._retries = 0
        self._tokens = 0
        self._duration = 0.0
        self._queueing = StreamingMean()
        self._goodput = StreamingGoodput(ttft_slo_s=ttft_slo_s,
                                         tpot_slo_s=tpot_slo_s)
        # Per-SLO-class accumulators (created lazily on first observation
        # of each class) plus prefix-reuse counters — the streaming side of
        # ServingTrace.per_class_summary / prefix_hit_rate.  Per-class
        # goodput SLOs are fixed at construction via ``class_slos``, for
        # the same reason the trace-level SLOs are.
        self._classes: dict[str, dict] = {}
        self._prefix_bearing = 0
        self._prefix_hits = 0
        self._preemptions = 0
        # Chunked-prefill / preemption-latency columns: the chunk total is
        # exact; the preemption-wait P99 is a P² estimate and follows the
        # ``quantiles`` gate like every other sketch.
        self._prefill_chunks = 0
        self._preempt_wait = (P2Quantile(0.99) if quantiles is not None
                              else None)

    # ------------------------------------------------------------------ #
    # record sink
    # ------------------------------------------------------------------ #
    def observe(self, record: RequestRecord) -> None:
        """Fold one terminated-request record into the running summary.

        Mirrors :class:`~repro.serving.trace.ServingTrace`'s status
        filtering: ``failed``/``shed`` records (fault injection only)
        extend the makespan and the resilience counters but contribute to
        no latency/token metric — they never generated tokens.
        """
        self._count += 1
        self._retries += record.retries
        if record.completion_time > self._duration:
            self._duration = record.completion_time
        if record.status != "completed":
            if record.status == "failed":
                self._failed += 1
            else:
                self._shed += 1
            return
        self._completed += 1
        self._tokens += record.output_len
        self._queueing.observe(record.queueing_delay)
        self._goodput.observe(record)
        if self._ttft is not None:
            self._ttft.observe(record.ttft)
            self._tpot.observe(record.tpot)
            self._latency.observe(record.e2e_latency)
        accumulator = self._classes.get(record.slo_class)
        if accumulator is None:
            ttft_slo_s, tpot_slo_s = self.class_slos.get(record.slo_class,
                                                         (None, None))
            accumulator = {"tokens": 0, "ttft": StreamingMean(),
                           "queueing": StreamingMean(),
                           "goodput": StreamingGoodput(
                               ttft_slo_s=ttft_slo_s,
                               tpot_slo_s=tpot_slo_s)}
            self._classes[record.slo_class] = accumulator
        accumulator["tokens"] += record.output_len
        accumulator["ttft"].observe(record.ttft)
        accumulator["queueing"].observe(record.queueing_delay)
        accumulator["goodput"].observe(record)
        if record.prefix_len > 0:
            self._prefix_bearing += 1
            self._prefix_hits += record.prefix_hit
        self._preemptions += record.preemptions
        self._prefill_chunks += record.prefill_chunks
        if record.preempting and self._preempt_wait is not None:
            self._preempt_wait.observe(record.queueing_delay)

    # ------------------------------------------------------------------ #
    # aggregate metrics (ServingTrace surface)
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        return self._count

    @property
    def duration(self) -> float:
        """Makespan: serve start (t=0) to the last observed completion."""
        return self._duration

    @property
    def generated_tokens(self) -> int:
        return self._tokens

    @property
    def throughput(self) -> float:
        if self._duration <= 0:
            return 0.0
        return self._tokens / self._duration

    @property
    def mean_queueing_delay(self) -> float:
        return self._queueing.mean

    @property
    def num_failed(self) -> int:
        """Requests that exhausted their retry budget under failures."""
        return self._failed

    @property
    def num_shed(self) -> int:
        """Requests dropped by degraded-mode load shedding."""
        return self._shed

    @property
    def num_retries(self) -> int:
        """Total re-dispatches across all terminated requests."""
        return self._retries

    def _percentiles(self, bank: StreamingPercentiles | None, qs) \
            -> dict[float, float]:
        if bank is None or self._completed == 0:
            return {}
        values = bank.values()
        missing = [q for q in qs if float(q) not in values]
        if missing:
            raise ConfigurationError(
                f"streaming trace tracks percentiles {list(bank.qs)}; "
                f"{missing} were not configured at construction"
            )
        return {float(q): values[float(q)] for q in qs}

    def ttft_percentiles(self, qs=DEFAULT_QUANTILES) -> dict[float, float]:
        return self._percentiles(self._ttft, qs)

    def tpot_percentiles(self, qs=DEFAULT_QUANTILES) -> dict[float, float]:
        return self._percentiles(self._tpot, qs)

    def latency_percentiles(self, qs=DEFAULT_QUANTILES) -> dict[float, float]:
        return self._percentiles(self._latency, qs)

    def goodput(self, ttft_slo_s: float | None = None,
                tpot_slo_s: float | None = None) -> float:
        """SLO-conditioned token goodput for the SLOs fixed at construction.

        The unconstrained case (both ``None``) needs no per-record state and
        is always answerable; any other SLO pair must equal the one this
        trace was built with, because compliance was judged as records
        streamed by.
        """
        if ttft_slo_s is None and tpot_slo_s is None:
            if self._duration <= 0:
                return 0.0
            return self._tokens / self._duration
        if (ttft_slo_s, tpot_slo_s) != (self.ttft_slo_s, self.tpot_slo_s):
            raise ConfigurationError(
                f"streaming goodput was accumulated for SLOs "
                f"(ttft={self.ttft_slo_s!r}, tpot={self.tpot_slo_s!r}); "
                f"(ttft={ttft_slo_s!r}, tpot={tpot_slo_s!r}) would need the "
                f"retained records (record_mode='full')"
            )
        return self._goodput.goodput(self._duration)

    # ------------------------------------------------------------------ #
    # session / SLO-class columns (ServingTrace surface)
    # ------------------------------------------------------------------ #
    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-bearing requests whose prefix was resident."""
        if self._prefix_bearing == 0:
            return 0.0
        return self._prefix_hits / self._prefix_bearing

    @property
    def num_preemptions(self) -> int:
        """Total preemptions suffered across all observed requests."""
        return self._preemptions

    @property
    def p99_preemption_latency(self) -> float:
        """P² estimate of the P99 preemptor queueing delay (0.0 when
        nothing preempted, or when sketches are disabled)."""
        if self._preempt_wait is None or self._preempt_wait.count == 0:
            return 0.0
        return self._preempt_wait.value

    @property
    def prefill_chunks_per_request(self) -> float:
        """Mean prefill chunks per request — exact, like the token totals."""
        if self._completed == 0:
            return 0.0
        return self._prefill_chunks / self._completed

    def per_class_summary(self, class_slos: dict | None = None) -> dict:
        """Per-SLO-class breakdown with ``ServingTrace``'s keys.

        Like :meth:`goodput`, per-class SLO compliance was judged as
        records streamed by, so ``class_slos`` must either be
        ``None``/empty (unconstrained goodput — always answerable, it is
        just per-class throughput) or match the mapping this trace was
        built with.
        """
        requested = normalize_class_slos(class_slos)
        unconstrained = not requested
        if not unconstrained and requested != self.class_slos:
            raise ConfigurationError(
                f"streaming per-class goodput was accumulated for class "
                f"SLOs {self.class_slos!r}; {requested!r} would need the "
                f"retained records (record_mode='full')"
            )
        duration = self._duration
        out = {}
        for name in sorted(self._classes):
            accumulator = self._classes[name]
            if unconstrained:
                goodput = (accumulator["tokens"] / duration
                           if duration > 0 else 0.0)
            else:
                goodput = accumulator["goodput"].goodput(duration)
            out[name] = {
                "num_requests": accumulator["ttft"].count,
                "generated_tokens": accumulator["tokens"],
                "goodput_tokens_per_s": goodput,
                "mean_ttft_s": accumulator["ttft"].mean,
                "mean_queueing_delay_s": accumulator["queueing"].mean,
            }
        return out

    def summary(self) -> dict:
        """Flat summary with the same keys as ``ServingTrace.summary()``."""
        ttft = self.ttft_percentiles() if self._ttft is not None else {}
        tpot = self.tpot_percentiles() if self._tpot is not None else {}
        latency = (self.latency_percentiles()
                   if self._latency is not None else {})
        return {
            "system": self.system,
            "model": self.model,
            "num_requests": self.num_requests,
            "generated_tokens": self.generated_tokens,
            "duration_s": self.duration,
            "throughput_tokens_per_s": self.throughput,
            "mean_queueing_delay_s": self.mean_queueing_delay,
            "p50_ttft_s": ttft.get(50.0, 0.0),
            "p90_ttft_s": ttft.get(90.0, 0.0),
            "p99_ttft_s": ttft.get(99.0, 0.0),
            "p50_tpot_s": tpot.get(50.0, 0.0),
            "p99_tpot_s": tpot.get(99.0, 0.0),
            "p50_latency_s": latency.get(50.0, 0.0),
            "p99_latency_s": latency.get(99.0, 0.0),
            "prefix_hit_rate": self.prefix_hit_rate,
            "num_preemptions": self.num_preemptions,
            "p99_preemption_latency_s": self.p99_preemption_latency,
            "prefill_chunks_per_request": self.prefill_chunks_per_request,
            "num_failed": self.num_failed,
            "num_shed": self.num_shed,
            "num_retries": self.num_retries,
        }
