"""Degraded-mode load shedding driven by live engine gauges.

The first *observability-driven control* policy (ROADMAP): instead of a
router-side estimate, the shedder reads the same live
:class:`~repro.serving.engine.RunGauges` views the observers see and drops
low-priority arrivals while the cluster cannot hold its interactive SLO —
i.e. while at least one replica is down *and* the surviving replicas show
queue or KV pressure.
"""

from __future__ import annotations

import dataclasses

from repro._common import ConfigurationError
from repro.workloads.arrivals import SLO_CLASSES


@dataclasses.dataclass(frozen=True)
class LoadShedder:
    """Shed ``classes`` arrivals while degraded and under pressure.

    ``classes`` defaults to the lowest-priority SLO class
    (``SLO_CLASSES[-1]``, i.e. ``"batch"``).  An arrival of a sheddable
    class is dropped (terminating as a ``shed`` record) when at least one
    replica is down and any surviving replica's live gauges meet either
    threshold; with the default zero thresholds every sheddable arrival is
    dropped for the whole outage window — the maximally protective
    setting for the interactive tier.  Retries of already-admitted work
    are never shed: shedding controls *new* load.
    """

    classes: tuple[str, ...] = (SLO_CLASSES[-1],)
    queue_depth: int = 0
    kv_occupancy: float = 0.0

    def __post_init__(self) -> None:
        for name in self.classes:
            if name not in SLO_CLASSES:
                raise ConfigurationError(
                    f"unknown SLO class {name!r}; known: {SLO_CLASSES}"
                )
        if not self.classes:
            raise ConfigurationError("LoadShedder needs at least one class")
        if self.queue_depth < 0:
            raise ConfigurationError(
                f"queue_depth must be >= 0, got {self.queue_depth!r}"
            )
        if not 0.0 <= self.kv_occupancy <= 1.0:
            raise ConfigurationError(
                f"kv_occupancy must be in [0, 1], got {self.kv_occupancy!r}"
            )

    def should_shed(self, request, degraded: bool, gauges) -> bool:
        """Drop ``request``?  ``gauges`` are the surviving replicas' views."""
        if not degraded or request.slo_class not in self.classes:
            return False
        if not gauges:
            # Every replica is down: sheddable load has nowhere to go and
            # would only deepen the recovery backlog.
            return True
        return any(gauge.queue_depth >= self.queue_depth
                   or gauge.kv_occupancy >= self.kv_occupancy
                   for gauge in gauges)
