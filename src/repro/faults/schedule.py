"""Replica-outage schedules: explicit windows or stochastic MTBF/MTTR.

A :class:`FaultSchedule` is pure data — *when* each replica fails and
recovers, and in which mode — decoupled from *what happens then* (the
:class:`~repro.faults.retry.RetryPolicy` and
:class:`~repro.faults.coordinator.FaultCoordinator`).  Schedules are
validated at construction (windows ordered, per-replica windows disjoint)
so the event driver can merge :meth:`timeline` into its heap without
re-checking anything.
"""

from __future__ import annotations

import dataclasses

from repro._common import ConfigurationError, rng, validate_positive
from repro.serving.events import REPLICA_FAIL, REPLICA_RECOVER

#: Failure modes, in order of severity.  ``crash`` loses every resident and
#: prefix-cache KV byte at the fail instant; ``drain`` stops admitting and
#: migrates resident work off the replica with priced KV-drain transfers.
FAULT_MODES = ("crash", "drain")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One outage window: ``replica`` is down on ``[fail_time, recover_time)``."""

    replica: int
    fail_time: float
    recover_time: float
    mode: str = "crash"

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; known: {FAULT_MODES}"
            )
        if self.replica < 0:
            raise ConfigurationError(
                f"replica index must be >= 0, got {self.replica}"
            )
        if not self.fail_time >= 0.0:
            raise ConfigurationError(
                f"fail_time must be >= 0, got {self.fail_time!r}"
            )
        if not self.recover_time > self.fail_time:
            raise ConfigurationError(
                f"recover_time must exceed fail_time, got "
                f"[{self.fail_time!r}, {self.recover_time!r}]"
            )


class FaultSchedule:
    """An ordered, validated set of :class:`FaultEvent` outage windows."""

    def __init__(self, events) -> None:
        events = tuple(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"FaultSchedule entries must be FaultEvent, got "
                    f"{event!r}"
                )
        ordered = tuple(sorted(events,
                               key=lambda e: (e.fail_time, e.replica)))
        last_recover: dict[int, float] = {}
        for event in ordered:
            previous = last_recover.get(event.replica)
            if previous is not None and event.fail_time <= previous:
                raise ConfigurationError(
                    f"overlapping outage windows for replica "
                    f"{event.replica}: a window starting at "
                    f"{event.fail_time!r} begins before the previous one "
                    f"recovers at {previous!r}"
                )
            last_recover[event.replica] = event.recover_time
        self.events = ordered

    @classmethod
    def stochastic(cls, num_replicas: int, mtbf_s: float, mttr_s: float,
                   horizon_s: float, seed: int = 0,
                   mode: str = "crash") -> "FaultSchedule":
        """Sample outage windows from an alternating-renewal MTBF/MTTR model.

        Each replica alternates exponential up-times (mean ``mtbf_s``) and
        down-times (mean ``mttr_s``) until ``horizon_s``; the draw order is
        fixed (replica by replica, up then down), so the schedule is a pure
        function of ``(num_replicas, mtbf_s, mttr_s, horizon_s, seed)``.
        """
        validate_positive(num_replicas=num_replicas, mtbf_s=mtbf_s,
                          mttr_s=mttr_s, horizon_s=horizon_s)
        generator = rng(seed)
        events = []
        for replica in range(num_replicas):
            clock = 0.0
            while True:
                clock += float(generator.exponential(mtbf_s))
                if clock >= horizon_s:
                    break
                down = float(generator.exponential(mttr_s))
                events.append(FaultEvent(replica, clock, clock + down, mode))
                clock += down
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultSchedule)
                and self.events == other.events)

    def __repr__(self) -> str:
        return f"FaultSchedule({list(self.events)!r})"

    def max_replica(self) -> int:
        """Highest replica index named by any window (-1 when empty)."""
        return max((event.replica for event in self.events), default=-1)

    def timeline(self) -> list[tuple[float, str, int]]:
        """The merged ``(time, kind, replica)`` fail/recover event stream.

        Recoveries sort before failures at equal timestamps so capacity is
        never understated at an instant where one replica hands off to
        another.
        """
        entries = []
        for event in self.events:
            entries.append((event.fail_time, 1, REPLICA_FAIL, event.replica))
            entries.append((event.recover_time, 0, REPLICA_RECOVER,
                            event.replica))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[3]))
        return [(time, kind, replica) for time, _, kind, replica in entries]

    def downtime_s(self, horizon_s: float) -> float:
        """Total replica-seconds of outage clipped to ``[0, horizon_s]``."""
        total = 0.0
        for event in self.events:
            start = min(event.fail_time, horizon_s)
            end = min(event.recover_time, horizon_s)
            total += end - start
        return total
