"""Bounded retry with exponential backoff in simulated time."""

from __future__ import annotations

import dataclasses

from repro._common import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How interrupted requests are re-dispatched.

    A request interrupted by a replica failure is offered back to the
    router after ``delay(attempt)`` simulated seconds, where ``attempt``
    counts its re-dispatches so far (1-based).  Once a request has been
    interrupted more than ``max_retries`` times it terminates as a
    ``failed`` record instead.  ``drain`` migrations consume the same
    budget: the backoff clock starts when the migrated KV finishes its
    priced transfer off the failing replica.
    """

    max_retries: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.backoff_s < 0.0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s!r}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    def delay(self, attempt: int) -> float:
        """Simulated backoff before re-dispatch number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(
                f"attempt must be >= 1, got {attempt!r}"
            )
        return self.backoff_s * self.backoff_factor ** (attempt - 1)
