"""Deterministic fault injection and failure recovery.

The subsystem has four pieces, composed by the serve layers
(``ContinuousBatchingEngine.serve(faults=...)`` and
``ReplicaGroup.serve(faults=...)``):

* :class:`FaultSchedule` — *when* replicas fail and recover: explicit
  ``(replica, fail_time, recover_time, mode)`` entries or a seeded
  stochastic MTBF/MTTR model (:meth:`FaultSchedule.stochastic`);
* :class:`RetryPolicy` — *what happens to interrupted requests*: bounded
  re-dispatch attempts with exponential backoff in simulated time;
* :class:`LoadShedder` — *degraded-mode admission control*: sheds the
  lowest-priority SLO class while the cluster is degraded and the
  surviving replicas' live :class:`~repro.serving.engine.RunGauges` show
  pressure;
* :class:`FaultCoordinator` — the state machine binding them to the event
  driver (:func:`repro.serving.events.drive`), the health-aware
  :class:`~repro.cluster.Router`, and the engine runs.

Failure semantics (see ``docs/robustness.md``): ``mode="crash"`` loses all
resident and prefix-cache KV instantly and interrupts in-flight requests;
``mode="drain"`` stops admitting and migrates resident work off the
replica with priced KV-drain transfers, so the retained KV is swapped into
the destination replica instead of re-prefilled.  Everything is a pure
function of ``(trace, schedule, seeds)`` — fault journals are
seed-deterministic, and serves with ``faults=None`` never touch any of
this code.
"""

from repro.faults.coordinator import FaultCoordinator
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FAULT_MODES, FaultEvent, FaultSchedule
from repro.faults.shedding import LoadShedder

__all__ = [
    "FAULT_MODES",
    "FaultCoordinator",
    "FaultEvent",
    "FaultSchedule",
    "LoadShedder",
    "RetryPolicy",
]
