"""The fault-injection state machine bound into the event driver.

:class:`FaultCoordinator` owns everything that happens *between* a replica
failure and the affected requests' terminal records:

* it merges the :class:`~repro.faults.schedule.FaultSchedule` timeline
  into the driver's heap (``REPLICA_FAIL``/``REPLICA_RECOVER`` events);
* on a failure it marks the replica down in the health-aware router,
  collects the run's interrupted work, and re-injects each interrupted
  request as a retry arrival after its
  :class:`~repro.faults.retry.RetryPolicy` backoff (``drain`` interruptions
  carry their retained-KV wrapper, staged into the destination run so the
  migration is priced as a swap-in instead of a re-prefill);
* at dispatch it applies degraded-mode shedding
  (:class:`~repro.faults.shedding.LoadShedder` over the surviving runs'
  live gauges) and parks arrivals while no replica is up;
* it terminates requests that exhaust the retry budget (or are shed, or
  are still parked when the loop drains) as ``failed``/``shed``
  :class:`~repro.serving.trace.RequestRecord` entries, and annotates
  completed records with their retry count.

The coordinator is duck-typed against the runs and router (it never
imports :mod:`repro.serving.engine` or :mod:`repro.cluster`), which keeps
:mod:`repro.faults` import-cycle-free underneath both serve layers.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro._common import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.serving.trace import RequestRecord


class FaultCoordinator:
    """Binds a schedule + retry policy + shedder to one serve.

    Single-serve, like an observer: build a fresh coordinator per serve
    (the serve layers do this internally from their ``faults=``/``retry=``/
    ``shedding=`` keywords).
    """

    def __init__(self, schedule: FaultSchedule,
                 retry: RetryPolicy | None = None,
                 shedder=None) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ConfigurationError(
                f"faults must be a FaultSchedule, got {schedule!r}"
            )
        self.schedule = schedule
        self.retry = retry if retry is not None else RetryPolicy()
        self.shedder = shedder
        #: Terminal ``failed``/``shed`` records (full record mode; in
        #: streaming mode they flow through ``record_sink`` instead).
        self.records: list[RequestRecord] = []
        self.num_failures = 0
        self.num_retries = 0
        self.num_shed = 0
        self.num_failed = 0
        self._windows: dict[int, deque] = {}
        for event in schedule.events:
            self._windows.setdefault(event.replica, deque()).append(event)
        self._down: set[int] = set()
        self._fail_started: dict[int, float] = {}
        #: Observed ``(fail, recover)`` spans; clipped to the serve's
        #: duration by :meth:`resilience` (a recovery scheduled past the
        #: last completion still ends the span for accounting).
        self._spans: list[tuple[float, float]] = []
        self._attempts: dict[int, int] = {}
        self._staged: dict[int, object] = {}
        self._parked: list[tuple] = []
        self._bound = False

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def bind(self, runs, route, router=None, observers=(),
             record_sink=None) -> None:
        """Attach the serve's runs, routing, and sinks before driving.

        ``route(request) -> index`` must only ever return an up replica
        (the health-aware router guarantees this; the coordinator parks
        arrivals itself while *no* replica is up).  ``record_sink``, when
        given, receives terminal ``failed``/``shed`` records as they
        happen (streaming mode); otherwise they collect in
        :attr:`records`.
        """
        if self.schedule.max_replica() >= len(runs):
            raise ConfigurationError(
                f"fault schedule names replica "
                f"{self.schedule.max_replica()} but the serve has only "
                f"{len(runs)} replicas"
            )
        self._runs = list(runs)
        self._route = route
        self._router = router
        self._observers = tuple(observers)
        self._record_sink = record_sink
        self._gauges = [run.gauges() for run in self._runs]
        for run in self._runs:
            run.set_record_filter(self.annotate)
        self._bound = True

    def timeline(self):
        """The schedule's merged ``(time, kind, replica)`` event stream."""
        return self.schedule.timeline()

    # ------------------------------------------------------------------ #
    # driver hooks (see events._drive_with_faults)
    # ------------------------------------------------------------------ #
    def dispatch(self, time: float, request, retrying: bool) -> int | None:
        """Route one arrival; ``None`` means it was shed or parked."""
        if (not retrying and self.shedder is not None
                and self.shedder.should_shed(
                    request, bool(self._down),
                    [self._gauges[i] for i in range(len(self._runs))
                     if i not in self._down])):
            self.num_shed += 1
            self._terminate(request, time, "shed")
            for observer in self._observers:
                observer.on_shed(time, request)
            return None
        if len(self._down) == len(self._runs):
            self._parked.append((request, time, retrying))
            return None
        target = self._route(request)
        if target in self._down:
            raise ConfigurationError(
                f"route() returned down replica {target} — health-aware "
                f"routing must exclude failed replicas"
            )
        wrapper = self._staged.pop(request.request_id, None)
        if wrapper is not None:
            self._runs[target].stage_resumption(wrapper)
        return target

    def fail(self, time: float, replica: int) -> list[tuple]:
        """Take ``replica`` down; return ``(retry_time, request)`` retries."""
        event = self._windows[replica].popleft()
        self._down.add(replica)
        self._fail_started[replica] = time
        self.num_failures += 1
        if self._router is not None:
            self._router.mark_down(replica)
        for observer in self._observers:
            observer.on_replica_fail(replica, time, event.mode)
        injections = []
        for ready_time, request, wrapper in self._runs[replica].fail(
                time, event.mode):
            attempt = self._attempts.get(request.request_id, 0) + 1
            if attempt > self.retry.max_retries:
                self.num_failed += 1
                self._terminate(request, ready_time, "failed")
                continue
            self._attempts[request.request_id] = attempt
            self.num_retries += 1
            if wrapper is not None:
                self._staged[request.request_id] = wrapper
            retry_time = ready_time + self.retry.delay(attempt)
            for observer in self._observers:
                observer.on_retry(replica, retry_time, request, attempt)
            injections.append((retry_time, request))
        return injections

    def recover(self, time: float, replica: int):
        """Bring ``replica`` back (cold); release any parked arrivals."""
        self._down.discard(replica)
        self._spans.append((self._fail_started.pop(replica), time))
        if self._router is not None:
            self._router.mark_up(replica)
        event = self._runs[replica].recover(time)
        for observer in self._observers:
            observer.on_replica_recover(replica, time)
        released, self._parked = self._parked, []
        return event, [(request, retrying)
                       for request, _, retrying in released]

    def finish(self) -> None:
        """Terminate whatever is still parked once the loop drains."""
        for request, parked_at, _ in self._parked:
            self.num_failed += 1
            self._terminate(request, parked_at, "failed")
        self._parked = []
        self._staged.clear()

    # ------------------------------------------------------------------ #
    # record plumbing
    # ------------------------------------------------------------------ #
    def annotate(self, record: RequestRecord) -> RequestRecord:
        """Stamp a completed record with its retry count (record filter)."""
        retries = self._attempts.get(record.request_id, 0)
        if retries:
            return dataclasses.replace(record, retries=retries)
        return record

    def _terminate(self, request, time: float, status: str) -> None:
        instant = max(time, request.arrival_time)
        record = RequestRecord(
            request_id=request.request_id,
            arrival_time=request.arrival_time,
            admission_time=instant,
            first_token_time=instant,
            completion_time=instant,
            input_len=request.input_len,
            output_len=request.output_len,
            slo_class=request.slo_class,
            prefix_len=getattr(request, "prefix_len", 0),
            status=status,
            retries=self._attempts.get(request.request_id, 0),
        )
        if self._record_sink is not None:
            self._record_sink(record)
        else:
            self.records.append(record)

    # ------------------------------------------------------------------ #
    # resilience accounting
    # ------------------------------------------------------------------ #
    def resilience(self, duration: float, num_replicas: int) -> dict:
        """The serve's ``metadata["resilience"]`` block.

        Downtime sums the fail→recover spans clipped to ``[0, duration]``
        (an outage that outlives the serve counts only up to its end), so
        ``availability = 1 - downtime / (num_replicas * duration)`` is the
        replica-seconds the cluster actually lost.
        """
        downtime = 0.0
        for start, end in self._spans:
            downtime += max(0.0, min(end, duration) - min(start, duration))
        for start in self._fail_started.values():
            downtime += max(0.0, duration - start)
        capacity = num_replicas * duration
        availability = (1.0 - min(downtime, capacity) / capacity
                        if capacity > 0 else 1.0)
        return {
            "num_failures": self.num_failures,
            "num_retries": self.num_retries,
            "num_failed": self.num_failed,
            "num_shed": self.num_shed,
            "downtime_s": downtime,
            "availability": availability,
        }
