"""End-to-end accuracy evaluation of attention policies (Figure 8).

This module plays the role of the paper's lm-evaluation-harness runs: it
feeds a recall dataset through the constructed model one sequence at a time
under a chosen attention policy (and optional KV compression) and reports
the task metric — negative perplexity for language-modelling datasets,
answer accuracy for question-answering datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError
from repro.attention.variants import make_policy
from repro.core.compression import QuantizationSpec
from repro.model.constructed import build_recall_model
from repro.model.generation import teacher_forced_logits
from repro.model.transformer import TransformerModel
from repro.evaluation.metrics import answer_accuracy, negative_perplexity, perplexity
from repro.workloads.recall import (
    RecallDataset,
    RecallTaskConfig,
    generate_recall_dataset,
)


@dataclass(frozen=True)
class AccuracyResult:
    """Metric values of one (model, dataset, policy, sparsity) combination."""

    model: str
    dataset: str
    policy: str
    kv_sparsity: float
    compressed: bool
    metric_name: str
    metric_value: float
    perplexity: float
    accuracy: float
    num_sequences: int

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "policy": self.policy,
            "kv_sparsity": self.kv_sparsity,
            "compressed": self.compressed,
            "metric_name": self.metric_name,
            "metric_value": self.metric_value,
            "perplexity": self.perplexity,
            "accuracy": self.accuracy,
            "num_sequences": self.num_sequences,
        }


def evaluate_policy_on_dataset(model: TransformerModel,
                               dataset: RecallDataset,
                               policy_name: str,
                               kv_sparsity: float,
                               compressed: bool = False,
                               model_name: str | None = None) -> AccuracyResult:
    """Evaluate one attention policy at one KV sparsity on one dataset."""
    config = dataset.config
    if not dataset.sequences:
        raise ConfigurationError("dataset has no sequences")

    quantization = QuantizationSpec(num_bits=8) if compressed else None

    log_likelihood_ppls = []
    accuracies = []
    for sequence in dataset.sequences:
        tokens = sequence.tokens[None, :]
        policy = make_policy(policy_name, kv_sparsity=kv_sparsity)
        logits, _ = teacher_forced_logits(
            model, tokens, policy=policy, prefill_len=config.prefill_len,
            kv_quantization=quantization,
        )
        targets = tokens[:, 1:]
        # logits[:, t] predicts tokens[:, t + 1]; answer positions index the
        # original sequence, so shift by one to index the prediction array.
        answer_idx = sequence.answer_positions - 1
        answer_idx = answer_idx[(answer_idx >= config.prefill_len - 1)
                                & (answer_idx < targets.shape[1])]
        log_likelihood_ppls.append(perplexity(logits, targets))
        if answer_idx.size:
            accuracies.append(answer_accuracy(logits, targets, answer_idx))

    mean_ppl = float(np.mean(log_likelihood_ppls))
    mean_acc = float(np.mean(accuracies)) if accuracies else 0.0
    if config.task_type == "language-modeling":
        metric_name, metric_value = "negative_perplexity", -mean_ppl
    else:
        metric_name, metric_value = "accuracy", mean_acc
    return AccuracyResult(
        model=model_name or model.config.name,
        dataset=config.name,
        policy=policy_name,
        kv_sparsity=kv_sparsity,
        compressed=compressed,
        metric_name=metric_name,
        metric_value=metric_value,
        perplexity=mean_ppl,
        accuracy=mean_acc,
        num_sequences=len(dataset.sequences),
    )


def sweep_sparsity(paper_model: str, dataset_config: RecallTaskConfig,
                   policies: tuple[str, ...] = ("dense", "local", "strided", "swa"),
                   sparsities: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
                   include_alisa: bool = True,
                   num_sequences: int | None = None,
                   seed: int = 0) -> list[AccuracyResult]:
    """The Figure 8 sweep for one model and one dataset.

    ``include_alisa`` adds the "SWA + compression" series (the full ALISA
    algorithm configuration).  Dense attention is only evaluated at sparsity
    0 since sparsity does not apply to it.
    """
    config = dataset_config
    if num_sequences is not None:
        config = config.with_sequences(num_sequences)
    model = build_recall_model(paper_model, seed=seed)
    dataset = generate_recall_dataset(config, seed=seed)

    results: list[AccuracyResult] = []
    results.append(evaluate_policy_on_dataset(
        model, dataset, "dense", kv_sparsity=0.0, model_name=paper_model))
    for sparsity in sparsities:
        if sparsity == 0.0:
            continue
        for policy in policies:
            if policy == "dense":
                continue
            results.append(evaluate_policy_on_dataset(
                model, dataset, policy, kv_sparsity=sparsity,
                model_name=paper_model))
        if include_alisa:
            results.append(evaluate_policy_on_dataset(
                model, dataset, "swa", kv_sparsity=sparsity, compressed=True,
                model_name=paper_model))
    return results
