"""Evaluation metrics and runners (perplexity, accuracy, sparsity, Spearman)."""

from repro.evaluation.accuracy import (
    AccuracyResult,
    evaluate_policy_on_dataset,
    sweep_sparsity,
)
from repro.evaluation.correlation import (
    distribution_summary,
    score_distribution,
    spearman_correlation,
)
from repro.evaluation.metrics import (
    answer_accuracy,
    geometric_mean,
    negative_perplexity,
    percentiles,
    perplexity,
    relative_accuracy_drop,
    serving_goodput,
    token_log_likelihoods,
)
from repro.evaluation.sparsity import (
    ROW_MAX_THRESHOLD,
    attention_weight_sparsity,
    average_attention_map,
    average_received_attention,
    per_layer_sparsity,
    sparsity_over_steps,
)

__all__ = [
    "ROW_MAX_THRESHOLD",
    "AccuracyResult",
    "answer_accuracy",
    "attention_weight_sparsity",
    "average_attention_map",
    "average_received_attention",
    "distribution_summary",
    "evaluate_policy_on_dataset",
    "geometric_mean",
    "negative_perplexity",
    "per_layer_sparsity",
    "percentiles",
    "perplexity",
    "relative_accuracy_drop",
    "score_distribution",
    "serving_goodput",
    "spearman_correlation",
    "sparsity_over_steps",
    "sweep_sparsity",
    "token_log_likelihoods",
]
