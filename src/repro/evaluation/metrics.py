"""Task metrics: perplexity, answer accuracy, throughput and serving helpers.

The paper reports negative perplexity for language modelling and accuracy
for question answering (Figure 8, "higher is better" on both axes), and
token throughput for the system experiments (Figure 9).  The serving layer
(Section VI generalized to online traffic) additionally reports tail-latency
percentiles and SLO-conditioned goodput.
"""

from __future__ import annotations

import numpy as np

from repro._common import ConfigurationError, log_softmax


def token_log_likelihoods(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-token log-likelihoods.

    ``logits`` has shape ``(batch, seq, vocab)`` and ``targets`` has shape
    ``(batch, seq)``; ``logits[:, t]`` must be the prediction for
    ``targets[:, t]``.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 3 or targets.ndim != 2:
        raise ConfigurationError("logits must be 3-D and targets 2-D")
    if logits.shape[:2] != targets.shape:
        raise ConfigurationError(
            f"shape mismatch: logits {logits.shape[:2]} vs targets {targets.shape}"
        )
    log_probs = log_softmax(logits, axis=-1)
    batch_idx = np.arange(targets.shape[0])[:, None]
    pos_idx = np.arange(targets.shape[1])[None, :]
    return log_probs[batch_idx, pos_idx, targets]


def perplexity(logits: np.ndarray, targets: np.ndarray,
               positions: np.ndarray | None = None) -> float:
    """Perplexity over all target positions (or a subset of positions)."""
    lls = token_log_likelihoods(logits, targets)
    if positions is not None:
        positions = np.asarray(positions, dtype=int)
        lls = lls[:, positions]
    return float(np.exp(-np.mean(lls)))


def negative_perplexity(logits: np.ndarray, targets: np.ndarray,
                        positions: np.ndarray | None = None) -> float:
    """The paper's language-modelling metric (higher is better)."""
    return -perplexity(logits, targets, positions)


def answer_accuracy(logits: np.ndarray, targets: np.ndarray,
                    positions: np.ndarray) -> float:
    """Fraction of answer positions where the argmax prediction is correct."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    positions = np.asarray(positions, dtype=int)
    if positions.size == 0:
        raise ConfigurationError("no answer positions supplied")
    predictions = logits[:, positions].argmax(axis=-1)
    reference = targets[:, positions]
    return float(np.mean(predictions == reference))


def relative_accuracy_drop(baseline: float, value: float) -> float:
    """Relative drop of a metric versus its dense-attention baseline."""
    if baseline == 0:
        raise ConfigurationError("baseline metric must be non-zero")
    return (baseline - value) / abs(baseline)


def percentiles(values, qs=(50, 90, 99)) -> dict[float, float]:
    """Percentiles of ``values`` keyed by percentile rank.

    Uses :func:`numpy.percentile`'s default linear interpolation, so the
    serving reports match what any NumPy post-processing would compute.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("percentiles require at least one value")
    return {float(q): float(np.percentile(arr, q)) for q in qs}


def serving_goodput(records, duration_s: float, ttft_slo_s: float | None = None,
                    tpot_slo_s: float | None = None) -> float:
    """Generated tokens per second from requests that met their latency SLOs.

    ``records`` are completed-request records exposing ``ttft``, ``tpot``,
    and ``output_len`` (see :class:`repro.serving.trace.RequestRecord`); a
    ``None`` SLO leaves that dimension unconstrained.  An empty record set or
    non-positive ``duration_s`` yields 0 rather than dividing by zero.
    """
    if duration_s <= 0:
        return 0.0
    good_tokens = sum(
        record.output_len for record in records
        if (ttft_slo_s is None or record.ttft <= ttft_slo_s)
        and (tpot_slo_s is None or record.tpot <= tpot_slo_s)
    )
    return good_tokens / duration_s


def geometric_mean(values) -> float:
    """Geometric mean of positive values (used for speedup summaries)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
