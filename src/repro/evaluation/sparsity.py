"""Attention-weight sparsity measurement (Figures 3, 5, and 10).

The paper counts an attention-weight element as zero when it falls below 1%
of its row's maximum value, and reports the fraction of such elements over
the causally valid (unmasked) part of the attention matrix.
"""

from __future__ import annotations

import numpy as np

from repro._common import ConfigurationError
from repro.model.transformer import StepRecord

#: The paper's threshold: elements below this fraction of the row maximum
#: count as zero.
ROW_MAX_THRESHOLD = 0.01


def attention_weight_sparsity(weights: np.ndarray,
                              threshold: float = ROW_MAX_THRESHOLD,
                              causal: bool = True) -> float:
    """Sparsity of one attention-weight tensor ``(batch, heads, q, k)``."""
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise ConfigurationError("weights must be (batch, heads, q, k)")
    q_len, k_len = weights.shape[-2:]
    row_max = weights.max(axis=-1, keepdims=True)
    below = weights < threshold * row_max
    if causal and q_len > 1:
        offset = k_len - q_len
        valid = (np.arange(k_len)[None, :]
                 <= (np.arange(q_len)[:, None] + offset))
        below = below[..., valid]
        return float(np.mean(below))
    return float(np.mean(below))


def per_layer_sparsity(record: StepRecord,
                       threshold: float = ROW_MAX_THRESHOLD) -> list[float]:
    """Sparsity of every layer's attention weights in one step record."""
    return [attention_weight_sparsity(w, threshold) for w in record.weights]


def sparsity_over_steps(records: list[StepRecord],
                        threshold: float = ROW_MAX_THRESHOLD) -> np.ndarray:
    """Matrix of sparsities with shape ``(num_steps, num_layers)``."""
    if not records:
        raise ConfigurationError("no step records supplied")
    return np.array([per_layer_sparsity(r, threshold) for r in records])


def average_attention_map(records: list[StepRecord], layer: int,
                          seq_len: int) -> np.ndarray:
    """Average dense attention map over heads/batch for one layer (Figure 5).

    Only prefill records (``q_len == k_len``) contribute; the map is the
    mean attention-weight matrix truncated/padded to ``seq_len`` positions.
    """
    if seq_len <= 0:
        raise ConfigurationError("seq_len must be positive")
    accumulated = np.zeros((seq_len, seq_len))
    count = 0
    for record in records:
        weights = record.weights[layer]
        q_len, k_len = weights.shape[-2:]
        if q_len < 2:
            continue
        mean_map = weights.mean(axis=(0, 1))
        size = min(seq_len, q_len)
        accumulated[:size, :size] += mean_map[:size, :size]
        count += 1
    if count == 0:
        raise ConfigurationError("no prefill records with q_len > 1 found")
    return accumulated / count


def average_received_attention(records: list[StepRecord], layer: int,
                               num_positions: int) -> np.ndarray:
    """Average attention weight received by each absolute token position.

    Used for the attention-score-distribution comparison of Figure 4: each
    decoding step distributes one unit of attention over the selected key
    positions; this function accumulates it per position and normalizes by
    the number of steps.
    """
    if num_positions <= 0:
        raise ConfigurationError("num_positions must be positive")
    received = np.zeros(num_positions)
    steps = 0
    for record in records:
        weights = record.weights[layer]
        positions = np.asarray(record.key_positions[layer], dtype=int)
        reduced = weights.mean(axis=(0, 1))  # (q_len, kept)
        for row in reduced:
            valid = positions < num_positions
            received[positions[valid]] += row[valid]
            steps += 1
    if steps == 0:
        raise ConfigurationError("no records supplied")
    return received / steps
