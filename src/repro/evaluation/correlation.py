"""Attention-score distribution comparison (Figure 4).

The paper compares the average attention-score distribution each sparse
method produces against dense attention and reports the Spearman rank
correlation ``rho`` — SWA tracks dense attention almost perfectly while
local and strided attention are nearly uncorrelated.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro._common import ConfigurationError


def spearman_correlation(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Spearman rank correlation between two attention-score distributions."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ConfigurationError("distributions must have the same shape")
    if reference.size < 3:
        raise ConfigurationError("need at least 3 positions to correlate")
    if np.allclose(reference, reference[0]) or np.allclose(candidate, candidate[0]):
        return 0.0
    rho, _ = stats.spearmanr(reference, candidate)
    if np.isnan(rho):
        return 0.0
    return float(rho)


def score_distribution(received_attention: np.ndarray,
                       descending: bool = True) -> np.ndarray:
    """Sorted attention-score distribution (the power-law curves of Fig. 4)."""
    dist = np.sort(np.asarray(received_attention, dtype=np.float64))
    return dist[::-1] if descending else dist


def distribution_summary(received_attention: np.ndarray) -> dict:
    """Summary statistics of an attention-score distribution."""
    dist = score_distribution(received_attention)
    total = dist.sum()
    if total <= 0:
        raise ConfigurationError("attention distribution must have positive mass")
    normalized = dist / total
    top10 = max(1, int(0.1 * normalized.size))
    return {
        "top10pct_mass": float(normalized[:top10].sum()),
        "max_share": float(normalized[0]),
        "entropy": float(-(normalized * np.log(normalized + 1e-12)).sum()),
    }
