"""Cluster-level serving trace: per-replica traces merged into one view.

A :class:`ClusterTrace` *is a* :class:`~repro.serving.trace.ServingTrace`
over the union of every replica's request records, so all the percentile,
throughput, and goodput machinery applies unchanged at cluster scope.  The
per-replica :class:`ServingTrace` objects are kept intact (and summarised
in ``metadata["replicas"]``) so imbalance between replicas stays visible
after the merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.sketches import DEFAULT_QUANTILES, StreamingTrace
from repro.serving.trace import ServingTrace


@dataclass
class ClusterTrace(ServingTrace):
    """One serving run of a whole replica group."""

    replica_traces: list[ServingTrace] = field(default_factory=list)

    @classmethod
    def merge(cls, traces: list[ServingTrace], system: str,
              model: str, metadata: dict | None = None) -> "ClusterTrace":
        """Merge per-replica traces into one cluster-level trace.

        Records are ordered by completion time with a *stable* sort, so a
        single-replica merge preserves the engine's record order exactly —
        the degenerate cluster is bit-identical to serving directly.
        """
        records = [record for trace in traces for record in trace.records]
        records.sort(key=lambda record: record.completion_time)
        merged = cls(system=system, model=model, records=records,
                     metadata=dict(metadata or {}), replica_traces=traces)
        merged.metadata["replicas"] = [
            {"replica": index, "num_requests": trace.num_requests,
             "generated_tokens": trace.generated_tokens,
             "duration_s": trace.duration,
             "mean_queueing_delay_s": trace.mean_queueing_delay,
             "kv_budget_tokens": trace.metadata.get("kv_budget_tokens", 0),
             "peak_reserved_tokens": trace.metadata.get(
                 "peak_reserved_tokens", 0),
             "comm_time_share": trace.metadata.get("comm_time_share", 0.0)}
            for index, trace in enumerate(traces)
        ]
        merged.metadata.setdefault(
            "kv_budget_tokens",
            sum(trace.metadata.get("kv_budget_tokens", 0)
                for trace in traces))
        return merged

    # ------------------------------------------------------------------ #
    @property
    def num_replicas(self) -> int:
        return len(self.replica_traces)

    @property
    def tokens_imbalance(self) -> float:
        """Max/mean ratio of generated tokens across replicas (1.0 = even).

        Round-robin on heavy-tailed lengths drifts well above 1; load-aware
        policies keep it near 1.  Empty replicas count toward the mean, so
        a policy that starves a replica is penalized, not hidden.
        """
        tokens = [trace.generated_tokens for trace in self.replica_traces]
        if not tokens or sum(tokens) == 0:
            return 1.0
        return max(tokens) / (sum(tokens) / len(tokens))

    def summary(self) -> dict:
        """Cluster summary: the serving summary plus replica-level facts."""
        data = super().summary()
        data["num_replicas"] = self.num_replicas
        data["tokens_imbalance"] = self.tokens_imbalance
        return data


class StreamingClusterTrace(StreamingTrace):
    """Cluster-level streaming trace (``record_mode="streaming"``).

    The bounded-memory counterpart of :class:`ClusterTrace`: cluster-wide
    metrics are folded into sketches as completions stream out of the
    merged event loop (observation order is the event-processing order, not
    completion-time order — exact aggregates are order-independent, P²
    percentile estimates are deterministic given the event order).  The
    per-replica sinks are lightweight :class:`StreamingTrace` objects with
    percentile sketches disabled — their summaries in
    ``metadata["replicas"]`` need only counts, totals, and delays, exactly
    the fields :meth:`ClusterTrace.merge` reports.
    """

    def __init__(self, system: str, model: str, metadata: dict | None = None,
                 quantiles=DEFAULT_QUANTILES,
                 ttft_slo_s: float | None = None,
                 tpot_slo_s: float | None = None,
                 class_slos: dict | None = None,
                 replica_traces: list[StreamingTrace] | None = None) -> None:
        super().__init__(system, model, metadata=metadata,
                         quantiles=quantiles, ttft_slo_s=ttft_slo_s,
                         tpot_slo_s=tpot_slo_s, class_slos=class_slos)
        self.replica_traces: list[StreamingTrace] = list(replica_traces or [])

    @property
    def num_replicas(self) -> int:
        return len(self.replica_traces)

    @property
    def tokens_imbalance(self) -> float:
        """Max/mean ratio of generated tokens across replicas (1.0 = even);
        same definition as :attr:`ClusterTrace.tokens_imbalance`."""
        tokens = [trace.generated_tokens for trace in self.replica_traces]
        if not tokens or sum(tokens) == 0:
            return 1.0
        return max(tokens) / (sum(tokens) / len(tokens))

    def summary(self) -> dict:
        """Cluster summary with the same keys as ``ClusterTrace.summary()``."""
        data = super().summary()
        data["num_replicas"] = self.num_replicas
        data["tokens_imbalance"] = self.tokens_imbalance
        return data
