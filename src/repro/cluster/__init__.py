"""Data-parallel cluster serving: replica groups and request routing.

Scales the serving layer *out* where :class:`~repro.systems.cost.ParallelismSpec`
scales it *up*: a :class:`ReplicaGroup` runs several independent sharded
:class:`~repro.serving.engine.ContinuousBatchingEngine` replicas, a
:class:`Router` load-balances the arrival trace across them (round-robin,
join-shortest-queue by KV footprint, or least-loaded by estimated
completion time), and a :class:`ClusterTrace` merges the per-replica
serving traces into cluster-level latency/goodput metrics while keeping
per-replica breakdowns.  :class:`ClusterLayout` parses the compact axis
labels (``"tp-4"``, ``"2x(tp-2)"``) the serving sweep's ``cluster`` axis
accepts.
"""

from repro.cluster.group import ReplicaGroup, SimulatorFactory
from repro.cluster.layout import ClusterLayout
from repro.cluster.router import ROUTING_POLICIES, Router
from repro.cluster.trace import ClusterTrace, StreamingClusterTrace
from repro.hardware.presets import (
    ClusterSpec,
    cluster_of,
    validate_equal_gpu_count,
)

__all__ = [
    "ROUTING_POLICIES",
    "ClusterLayout",
    "ClusterSpec",
    "ClusterTrace",
    "ReplicaGroup",
    "Router",
    "SimulatorFactory",
    "StreamingClusterTrace",
    "cluster_of",
    "validate_equal_gpu_count",
]
