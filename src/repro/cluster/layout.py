"""Cluster layouts: how many replicas, and how each replica is sharded.

A :class:`ClusterLayout` is the experiment-facing description of a
data-parallel configuration — ``num_replicas`` model copies, each spread
over its node by one :class:`~repro.systems.cost.ParallelismSpec`.  It is
the parsed form of the compact axis labels the serving sweep accepts:

* ``"tp-4"`` — one replica, tensor parallel over 4 GPUs;
* ``"2x(tp-2)"`` — two replicas, each tensor parallel over 2 GPUs;
* ``"4x(tp-1)"`` / ``"4x(none)"`` — four single-GPU replicas.

All three above spend 4 GPUs, so one sweep invocation can answer the
paper-scale question "TP-4 vs 2x(TP-2) at equal GPU count".
``ClusterLayout.parse`` and :attr:`ClusterLayout.label` round-trip through
the canonical spelling (degree-1 replica parallelism normalizes to
``none``, exactly like :meth:`ParallelismSpec.parse`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro._common import ConfigurationError, validate_positive
from repro.hardware.presets import (
    NVLINK,
    ClusterSpec,
    HardwareSpec,
    InterconnectSpec,
    multi_gpu,
)
from repro.systems.cost import ParallelismSpec

#: ``"<replicas>x(<parallelism>)"`` — the replica-count prefix is optional
#: (a bare parallelism label means one replica).
_LAYOUT_RE = re.compile(r"^(?P<replicas>\d+)\s*x\s*\((?P<inner>[^()]*)\)$")


@dataclass(frozen=True)
class ClusterLayout:
    """``num_replicas`` data-parallel replicas of one sharded serving node."""

    num_replicas: int = 1
    parallelism: ParallelismSpec = field(default_factory=ParallelismSpec)

    def __post_init__(self) -> None:
        validate_positive(num_replicas=self.num_replicas)

    @classmethod
    def parse(cls, spec: str, pp_microbatches: int = 4) -> "ClusterLayout":
        """Parse a cluster axis label: ``"tp-4"``, ``"2x(tp-2)"``, ...

        The inner parallelism label accepts everything
        :meth:`ParallelismSpec.parse` does, so ``"4x(tp-1)"`` normalizes to
        four single-GPU replicas (label ``"4x(none)"``).
        """
        label = spec.strip().lower()
        match = _LAYOUT_RE.match(label)
        if match:
            replicas = int(match.group("replicas"))
            if replicas < 1:
                raise ConfigurationError(
                    f"cluster layout {spec!r} needs at least one replica"
                )
            inner = ParallelismSpec.parse(match.group("inner"),
                                          pp_microbatches=pp_microbatches)
            return cls(num_replicas=replicas, parallelism=inner)
        return cls(parallelism=ParallelismSpec.parse(
            label, pp_microbatches=pp_microbatches))

    @property
    def label(self) -> str:
        """Canonical axis label (inverse of :meth:`parse`)."""
        if self.num_replicas == 1:
            return self.parallelism.label
        return f"{self.num_replicas}x({self.parallelism.label})"

    @property
    def total_gpus(self) -> int:
        """GPUs the whole layout spends (replicas x degree)."""
        return self.num_replicas * self.parallelism.degree

    def cluster_spec(self, base: HardwareSpec,
                     interconnect: InterconnectSpec = NVLINK) -> ClusterSpec:
        """Materialize the layout over copies of a single-GPU ``base`` node."""
        node = multi_gpu(base, self.parallelism.degree, interconnect)
        return ClusterSpec(name=f"{node.name}-dp{self.num_replicas}",
                           node=node, num_replicas=self.num_replicas)
