"""Data-parallel replica groups over the continuous-batching engine.

A :class:`ReplicaGroup` owns N independent
:class:`~repro.serving.engine.ContinuousBatchingEngine` replicas — each
with its own simulator, hardware node, parallelism spec, and schedule
cache — and serves one arrival trace by routing every request to exactly
one replica (:class:`~repro.cluster.router.Router`), simulating each
replica over its share, and merging the per-replica traces into a
:class:`~repro.cluster.trace.ClusterTrace`.

This is the scale-out axis on top of the scale-up axis: tensor/pipeline
parallelism makes one replica bigger, replica groups add more of them, and
the serving sweep's ``cluster`` axis compares both at equal GPU count
(TP-4 vs 2x(TP-2) vs 4x(TP-1)).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro._common import ConfigurationError
from repro.cluster.layout import ClusterLayout
from repro.cluster.router import Router
from repro.cluster.trace import ClusterTrace, StreamingClusterTrace
from repro.hardware.presets import (
    NVLINK,
    ClusterSpec,
    HardwareSpec,
    InterconnectSpec,
)
from repro.serving.engine import ContinuousBatchingEngine
from repro.serving.events import check_observers, drive, notify_finish
from repro.systems.cost import ParallelismSpec
from repro.systems.simulator import InferenceSimulator
from repro.workloads.arrivals import Request, RequestStream

#: Builds one replica's simulator on its node under its parallelism spec.
SimulatorFactory = Callable[[HardwareSpec, ParallelismSpec],
                            InferenceSimulator]


class ReplicaGroup:
    """N replica engines plus the routing policy that feeds them.

    Parameters
    ----------
    engines:
        One :class:`ContinuousBatchingEngine` per replica.  All replicas
        must serve the same system and model (a cluster mixes hardware at
        most, never model identities).
    policy:
        Default routing policy (see
        :data:`~repro.cluster.router.ROUTING_POLICIES`); overridable per
        :meth:`serve` call.
    seed:
        Default router seed: fixes tie-breaking so the per-replica request
        split is deterministic run-to-run.  Thread the arrival trace's
        ``generate_requests`` seed through here to make the whole cluster
        trace a pure function of one seed.
    cluster:
        Optional :class:`ClusterSpec` recorded in trace metadata.
    """

    def __init__(self, engines: list[ContinuousBatchingEngine],
                 policy: str = "round-robin", seed: int | None = 0,
                 cluster: ClusterSpec | None = None) -> None:
        if not engines:
            raise ConfigurationError("a replica group needs at least one "
                                     "replica engine")
        names = {engine.simulator.name for engine in engines}
        models = {engine.simulator.config.name for engine in engines}
        if len(names) > 1 or len(models) > 1:
            raise ConfigurationError(
                f"replicas must serve one system and model, got systems "
                f"{sorted(names)} over models {sorted(models)}"
            )
        # Validates the policy name before any serving happens.
        Router(len(engines), policy, seed)
        self.engines = engines
        self.policy = policy
        self.seed = seed
        self.cluster = cluster
        self._service_estimates: list[dict[tuple[int, int], float]] = \
            [{} for _ in engines]
        self._share_pricing_caches()

    def _share_pricing_caches(self) -> None:
        """Let replicas with identical pricing share prefill/epoch caches.

        Replicas routed shares of one arrival trace see heavily overlapping
        epoch and prefill shapes; when their simulators price identically
        (equal ``pricing_signature``) and their engines use the same
        admission knobs, the first replica to price a shape serves it for
        all of them.  Prefill plans are always safe to share (placement
        depends only on the shape and the KV budget).  Priced epochs are
        shared only when the simulator's pricing is *shape-pure*
        (``pricing_is_shape_pure``): ALISA's warm-started schedule search
        seeds from its own replica-local solver history, so its priced
        epochs stay per replica unless the exact schedule policy is in
        force.  Schedule caches are never shared.
        """
        leaders: dict[tuple, ContinuousBatchingEngine] = {}
        for engine in self.engines:
            key = (engine.simulator.pricing_signature(),
                   engine.max_batch_size, engine.reserve_fraction)
            leader = leaders.setdefault(key, engine)
            if leader is not engine:
                engine.adopt_pricing_caches(
                    leader,
                    share_epochs=engine.simulator.pricing_is_shape_pure())

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_layout(cls, simulator_factory: SimulatorFactory,
                    layout: ClusterLayout | str, base: HardwareSpec,
                    interconnect: InterconnectSpec = NVLINK,
                    policy: str = "round-robin", seed: int | None = 0,
                    **engine_kwargs) -> "ReplicaGroup":
        """Build a group from a cluster layout over a single-GPU base node.

        ``simulator_factory(node, parallelism)`` is called once per replica,
        so every replica gets an independent simulator — and with it its own
        schedule cache and placement state.
        """
        if isinstance(layout, str):
            layout = ClusterLayout.parse(layout)
        spec = layout.cluster_spec(base, interconnect)
        engines = [
            ContinuousBatchingEngine(
                simulator_factory(spec.node, layout.parallelism),
                **engine_kwargs)
            for _ in range(spec.num_replicas)
        ]
        return cls(engines, policy=policy, seed=seed, cluster=spec)

    @property
    def num_replicas(self) -> int:
        return len(self.engines)

    @property
    def total_gpus(self) -> int:
        return sum(engine.simulator.hardware.gpu_count
                   for engine in self.engines)

    # ------------------------------------------------------------------ #
    # routing support
    # ------------------------------------------------------------------ #
    def estimate_service_time(self, replica: int, request: Request) -> float:
        """Estimated seconds ``replica`` would spend on ``request`` alone.

        Single-sequence prefill plus one dense decode step per output token
        at the final context length — deliberately the *router's* coarse
        view (it overcharges decode and ignores batching), priced by the
        replica's own cost model so heterogeneous replicas estimate
        honestly.  Cached per ``(input_len, output_len)`` shape.
        """
        key = (request.input_len, request.output_len)
        cached = self._service_estimates[replica].get(key)
        if cached is None:
            cost_model = self.engines[replica].simulator.cost_model
            cached = (cost_model.prefill_time(1, request.input_len)
                      + request.output_len
                      * cost_model.decode_step_time(1, request.max_seq_len))
            self._service_estimates[replica][key] = cached
        return cached

    def _route_fn(self, policy: str, seed: int | None):
        """Dispatch-time routing closure: ``request -> replica index``.

        Wraps a fresh :class:`Router` exactly the way a front-end load
        balancer runs — one decision per arrival, knowing only the dispatch
        history.  Both the eager pre-pass (:meth:`route`) and the live
        event loop (:meth:`serve`) call through here, so their assignments
        are identical by construction.
        """
        router = Router(self.num_replicas, policy, seed)
        # Round-robin never reads load state, so skip the per-replica
        # service estimates (2 cost-model evaluations per replica per new
        # request shape) on that path.
        load_aware = router.policy != "round-robin"
        zeros = [0.0] * self.num_replicas

        def route(request: Request) -> int:
            estimates = ([self.estimate_service_time(replica, request)
                          for replica in range(self.num_replicas)]
                         if load_aware else zeros)
            return router.assign(request, estimates)

        return route, router

    def _dispatch(self, requests: list[Request], policy: str,
                  seed: int | None) -> tuple[list[Request], list[int]]:
        """Routing pre-pass: requests in dispatch order plus their replica
        indices.  Pure function of ``(requests, policy, seed)`` — routing
        never sees simulation results, so the pre-pass and the live event
        loop make the same decisions."""
        route, _ = self._route_fn(policy, seed)
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_time, r.request_id))
        return ordered, [route(request) for request in ordered]

    def route(self, requests: list[Request], policy: str | None = None,
              seed: int | None = None) -> list[list[Request]]:
        """Split ``requests`` into one per-replica trace (dispatch order).

        Requests are dispatched in ``(arrival_time, request_id)`` order —
        the order a front-end sees them — and each lands on exactly one
        replica.  Pure function of ``(requests, policy, seed)``.
        """
        ordered, indices = self._dispatch(
            requests, self.policy if policy is None else policy,
            self.seed if seed is None else seed)
        assignments: list[list[Request]] = [[] for _ in self.engines]
        for request, index in zip(ordered, indices):
            assignments[index].append(request)
        return assignments

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, requests, policy: str | None = None,
              seed: int | None = None, record_mode: str = "full",
              ttft_slo_s: float | None = None,
              tpot_slo_s: float | None = None,
              class_slos: dict | None = None,
              event_journal: list | None = None,
              observers=None, faults=None, retry=None, shedding=None):
        """Serve ``requests`` through one merged event stream.

        Every replica becomes an event-driven
        :class:`~repro.serving.engine.EngineRun` and
        :func:`~repro.serving.events.drive` interleaves them on one heap:
        routing fires at true arrival instants (dispatch order, exactly the
        decisions :meth:`route` makes) and idle replicas consume zero work.
        ``requests`` is a list or a bounded-memory
        :class:`~repro.workloads.arrivals.RequestStream`.

        ``requests`` may also be a closed-loop continuation source (e.g.
        :class:`~repro.workloads.sessions.ClosedLoopSessions`): arrivals
        then depend on the cluster's own simulated completions, which
        every replica feeds back through the source's ``on_completion``
        observer, and replicas run with ``eager_epochs=True`` (see
        :func:`~repro.serving.events.drive`).

        ``record_mode="full"`` returns a :class:`ClusterTrace` with one
        record per request; ``"streaming"`` a
        :class:`~repro.cluster.trace.StreamingClusterTrace` in O(1) memory
        whose goodput SLOs are fixed by ``ttft_slo_s``/``tpot_slo_s`` (and,
        per SLO class, by ``class_slos``).
        ``metadata["routing"]`` records the policy, seed, and per-replica
        dispatch counts, ``metadata["replicas"]`` the per-replica
        breakdowns.  ``event_journal``, when given, receives every
        processed ``(time, kind, replica)`` event (a test/debug surface).

        ``observers`` is an optional list of :class:`repro.obs.Observer`
        instances hooked into every replica run and the merged event loop
        (span tracing, metric timelines — see ``docs/observability.md``);
        with none registered the serve is bit-identical to an unobserved
        one.  Observers ride the event-driven path and cannot be combined
        with ``exact_stepping=True`` replicas.

        ``faults`` is an optional :class:`~repro.faults.FaultSchedule` of
        replica outages (``retry`` the
        :class:`~repro.faults.RetryPolicy` for interrupted requests,
        ``shedding`` an optional degraded-mode
        :class:`~repro.faults.LoadShedder`).  Fault serves always route
        *live* with health-aware candidates — failed replicas leave every
        policy's candidate set and rejoin cold on recovery — and the trace
        gains ``metadata["resilience"]`` (failure/retry/shed counts,
        downtime, availability).  ``faults=None`` serves are bit-identical
        to the pre-fault group.
        """
        started = perf_counter()
        policy = self.policy if policy is None else policy
        seed = self.seed if seed is None else seed
        observers = check_observers(observers)
        if faults is not None:
            if hasattr(requests, "pop_next"):
                raise ConfigurationError(
                    "fault injection does not support closed-loop sources "
                    "— lower the session trace to its open-loop request "
                    "stream"
                )
            if any(engine.simulator.exact_stepping
                   for engine in self.engines):
                raise ConfigurationError(
                    "fault injection schedules new event kinds and is only "
                    "implemented on the event-driven path; it cannot be "
                    "combined with exact_stepping=True replicas"
                )
        elif retry is not None or shedding is not None:
            raise ConfigurationError(
                "retry=/shedding= configure fault recovery and need a "
                "faults= schedule to act on"
            )
        if observers and any(engine.simulator.exact_stepping
                             for engine in self.engines):
            raise ConfigurationError(
                "observers hook the event-driven path and cannot be "
                "combined with exact_stepping=True replicas"
            )
        if record_mode not in ("full", "streaming"):
            raise ConfigurationError(
                f"unknown record_mode {record_mode!r}; known: ['full', "
                f"'streaming']"
            )
        simulator = self.engines[0].simulator

        closed_loop = hasattr(requests, "pop_next")
        if closed_loop:
            # Closed-loop source: arrivals are popped live (they depend on
            # completions), routing runs live, and every replica's budget
            # probe uses the source's global length bounds.
            bounds = requests.length_bounds
            share_bounds = [bounds] * self.num_replicas
            source = requests
            route, router = self._route_fn(policy, seed)
            total_budget = sum(
                engine.kv_budget_tokens_for_bounds(*bounds)
                for engine in self.engines)
            upfront = []
        elif isinstance(requests, RequestStream):
            # Streams never materialize: every replica's budget probe uses
            # the stream's global length bounds, and routing runs live.
            bounds = requests.length_bounds
            share_bounds = [bounds] * self.num_replicas
            source = iter(requests)
            route, router = self._route_fn(policy, seed)
            total_budget = sum(
                engine.kv_budget_tokens_for_bounds(*bounds)
                for engine in self.engines)
            upfront: list[tuple[Request, int]] = []
        elif faults is not None:
            # Fault serves route live even from a list: health changes
            # mid-trace, so a routing pre-pass replay would dispatch to
            # replicas that are down (and retries re-route anyway).  Every
            # replica's budget probe uses the global length bounds — after
            # a failure any request may land anywhere.
            source = sorted(requests,
                            key=lambda r: (r.arrival_time, r.request_id))
            route, router = self._route_fn(policy, seed)
            upfront = []
            if requests:
                bounds = (max(r.input_len for r in requests),
                          max(r.output_len for r in requests))
                share_bounds = [bounds] * self.num_replicas
                total_budget = sum(engine.kv_budget_tokens(requests)
                                   for engine in self.engines)
            else:
                share_bounds = [None] * self.num_replicas
                total_budget = None
        else:
            # Routing pre-pass (pure, independent of simulation) so each
            # replica's KV-budget probe sees exactly its share's length
            # maxima — identical budgets to serving the shares directly.
            ordered, indices = self._dispatch(requests, policy, seed)
            share_bounds = [None] * self.num_replicas
            counts = [0] * self.num_replicas
            for request, index in zip(ordered, indices):
                counts[index] += 1
                previous = share_bounds[index]
                if previous is None:
                    share_bounds[index] = (request.input_len,
                                           request.output_len)
                else:
                    share_bounds[index] = (
                        max(previous[0], request.input_len),
                        max(previous[1], request.output_len))
            source = ordered
            replay = iter(indices)
            route = lambda request: next(replay)  # noqa: E731
            router = None
            total_budget = (sum(engine.kv_budget_tokens(requests)
                                for engine in self.engines)
                            if requests else None)
            upfront = list(zip(ordered, indices))

        if observers:
            # Wrap the routing closure so observers see every assignment —
            # covers both the live-router and the replay path, without the
            # router itself learning about observation.
            inner_route = route

            def route(request, _inner=inner_route):
                target = _inner(request)
                for ob in observers:
                    ob.on_assign(request.arrival_time, request, target)
                return target

        streaming = record_mode == "streaming"
        cluster_trace = None
        observer = None
        if streaming:
            cluster_trace = StreamingClusterTrace(
                system=simulator.name, model=simulator.config.name,
                ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s,
                class_slos=class_slos)
            observer = cluster_trace.observe
        if closed_loop:
            # Every completion must reach the source so it can schedule
            # the session's next turn; the cluster-level streaming sink
            # (when any) still sees each record exactly once.
            if observer is None:
                observer = requests.on_completion
            else:
                cluster_observe = observer

                def observer(record, _sink=cluster_observe,
                             _feedback=requests.on_completion):
                    _sink(record)
                    _feedback(record)
        fault_mode = faults is not None
        runs = []
        for index, (engine, share) in enumerate(zip(self.engines,
                                                    share_bounds)):
            trace = engine.make_trace(record_mode, ttft_slo_s, tpot_slo_s,
                                      quantiles=() if streaming else None)
            if share is None:
                runs.append(engine.start_run(trace, observer=observer,
                                             observers=observers,
                                             replica=index,
                                             fault_mode=fault_mode))
            else:
                runs.append(engine.start_run(trace, max_input_len=share[0],
                                             max_output_len=share[1],
                                             observer=observer,
                                             eager_epochs=closed_loop,
                                             observers=observers,
                                             replica=index,
                                             fault_mode=fault_mode))
        for request, index in upfront:
            # Legacy contract: an impossible request raises before any
            # simulation happens (streams check at their arrival instead).
            runs[index].check_admissible(request)
        coordinator = None
        if fault_mode:
            from repro.faults import FaultCoordinator
            coordinator = FaultCoordinator(faults, retry=retry,
                                           shedder=shedding)
            # Terminal failed/shed records flow straight into the streaming
            # sink; in full mode they collect on the coordinator and join
            # the merged records below.
            coordinator.bind(runs, route, router=router,
                             observers=observers,
                             record_sink=observer if streaming else None)
        drive(source, runs, route, journal=event_journal,
              observers=observers, faults=coordinator)
        traces = [run.finalize() for run in runs]

        # Live routing tallies dispatches as the event loop runs, so the
        # counts exist only after drive(); the list pre-pass knew them
        # upfront.
        dispatch_counts = counts if router is None else router.dispatch_counts
        metadata = {
            "routing": {"policy": policy, "seed": seed,
                        "dispatch_counts": list(dispatch_counts)},
            "num_replicas": self.num_replicas,
            "total_gpus": self.total_gpus,
            "record_mode": record_mode,
        }
        if total_budget is not None:
            # Cluster capacity is a hardware fact: probe every replica's
            # budget against the whole trace, so the reported budget does
            # not shrink when a routing policy starves a replica (an empty
            # replica's own trace reports budget 0).
            metadata["kv_budget_tokens"] = total_budget
        if self.cluster is not None:
            metadata["cluster"] = {"name": self.cluster.name,
                                   "node": self.cluster.node.name,
                                   "num_replicas": self.cluster.num_replicas,
                                   "total_gpus": self.cluster.total_gpus}
        scheduler = self._aggregate_scheduler_stats(traces)
        if scheduler:
            metadata["scheduler"] = scheduler
        epoch_cache = self._aggregate_epoch_cache(traces)
        if epoch_cache is not None:
            # Exact even when replicas share one pricing cache: each
            # engine's hit/miss counters are per engine, so per-replica
            # deltas sum without double counting.
            metadata["epoch_cache"] = epoch_cache
        metadata["wall_clock_s"] = perf_counter() - started
        if not streaming:
            merged = ClusterTrace.merge(traces, system=simulator.name,
                                        model=simulator.config.name,
                                        metadata=metadata)
            if coordinator is not None:
                merged.records.extend(coordinator.records)
                merged.records.sort(
                    key=lambda r: (r.completion_time, r.request_id))
                merged.metadata["resilience"] = coordinator.resilience(
                    merged.duration, self.num_replicas)
            notify_finish(observers, merged, class_slos)
            return merged
        cluster_trace.replica_traces = traces
        cluster_trace.metadata.update(metadata)
        if coordinator is not None:
            cluster_trace.metadata["resilience"] = coordinator.resilience(
                cluster_trace.duration, self.num_replicas)
        cluster_trace.metadata["replicas"] = [
            {"replica": index, "num_requests": trace.num_requests,
             "generated_tokens": trace.generated_tokens,
             "duration_s": trace.duration,
             "mean_queueing_delay_s": trace.mean_queueing_delay,
             "kv_budget_tokens": trace.metadata.get("kv_budget_tokens", 0),
             "peak_reserved_tokens": trace.metadata.get(
                 "peak_reserved_tokens", 0),
             "comm_time_share": trace.metadata.get("comm_time_share", 0.0)}
            for index, trace in enumerate(traces)
        ]
        cluster_trace.metadata.setdefault(
            "kv_budget_tokens",
            sum(trace.metadata.get("kv_budget_tokens", 0)
                for trace in traces))
        notify_finish(observers, cluster_trace, class_slos)
        return cluster_trace

    @staticmethod
    def _aggregate_epoch_cache(traces) -> dict[str, int] | None:
        """Cluster-wide priced-epoch cache hits/misses (None when absent,
        e.g. every replica ran with ``exact_stepping=True``)."""
        totals = {"hits": 0, "misses": 0}
        found = False
        for trace in traces:
            cache = trace.metadata.get("epoch_cache")
            if cache is not None:
                found = True
                totals["hits"] += cache["hits"]
                totals["misses"] += cache["misses"]
        return totals if found else None

    @staticmethod
    def _aggregate_scheduler_stats(traces) -> dict[str, int]:
        """Sum per-replica scheduler-cache counters (empty when none)."""
        totals: dict[str, int] = {}
        for trace in traces:
            for key, value in trace.metadata.get("scheduler", {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals
