"""Load-balancing router: spreads an arrival trace over serving replicas.

The router makes its decision *at dispatch time*, the way a front-end load
balancer does: when a request arrives it must pick a replica immediately,
knowing only what it has sent where so far — never the served future.  Load
is therefore tracked with the same analytic estimates a production router
would keep (outstanding KV footprint, estimated backlog drain time), and
the replicas are simulated independently afterwards.

Policies (:data:`ROUTING_POLICIES`):

* ``"round-robin"`` — cyclic dispatch, blind to load; the baseline every
  serving system ships first;
* ``"jsq"`` — join-shortest-queue by *outstanding KV-token footprint*: the
  request joins the replica currently holding the fewest reserved KV
  tokens.  KV tokens are the serving engine's admission currency, so this
  is the queue length that actually gates latency;
* ``"least-loaded"`` — by *estimated completion time*: each replica's
  backlog is modelled as a single-server queue that drains one request's
  estimated service time after another; the request joins the replica that
  would finish it earliest;
* ``"session-affinity"`` — sticky sessions: every turn of a multi-turn
  session (:mod:`repro.workloads.sessions`) is pinned to the replica its
  first turn joined, so the engine-level prefix cache can actually hit —
  a session's retained KV lives on one replica only.  Sessions are placed
  (and plain sessionless requests routed) by the ``"jsq"`` rule; the pin
  is dropped when a session's final turn is dispatched, keeping router
  state bounded by the *active* session count.

Determinism: every policy is a pure function of the dispatch history, and
ties are broken by a preference order drawn once from the router's seed
(:func:`repro._common.rng`), so the same ``(requests, policy, seed)``
always yields the identical split — cluster traces are reproducible
run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._common import ConfigurationError, rng, validate_positive
from repro.workloads.arrivals import Request

#: Dispatch policies understood by :class:`Router`.
ROUTING_POLICIES = ("round-robin", "jsq", "least-loaded", "session-affinity")


@dataclass
class _ReplicaLoad:
    """What the router believes one replica is currently doing."""

    #: ``(estimated_finish_time, kv_tokens)`` of every dispatched request
    #: believed still in flight (requests run concurrently under
    #: continuous batching, so each drains on its own estimate).
    in_flight: list[tuple[float, int]] = field(default_factory=list)
    #: Single-server backlog horizon for the least-loaded policy.
    busy_until: float = 0.0
    #: Requests dispatched to this replica (trace metadata).
    dispatched: int = 0

    def retire(self, clock: float) -> None:
        self.in_flight = [(finish, tokens) for finish, tokens
                          in self.in_flight if finish > clock]

    def outstanding_tokens(self, clock: float) -> int:
        self.retire(clock)
        return sum(tokens for _, tokens in self.in_flight)


class Router:
    """Assigns requests to ``num_replicas`` replicas under one policy.

    A router instance carries dispatch state and is meant to route exactly
    one arrival trace; :meth:`repro.cluster.group.ReplicaGroup.serve`
    builds a fresh one per serve.
    """

    def __init__(self, num_replicas: int, policy: str = "round-robin",
                 seed: int | None = 0) -> None:
        validate_positive(num_replicas=num_replicas)
        if policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r}; "
                f"known: {list(ROUTING_POLICIES)}"
            )
        self.num_replicas = num_replicas
        self.policy = policy
        self.seed = seed
        # Tie-break preference: a seeded permutation fixed for the router's
        # lifetime.  `_preference[i]` is replica i's rank; among equally
        # loaded replicas the lowest rank wins, so ties resolve identically
        # run-to-run for the same seed (and differently across seeds).
        self._preference = [int(rank)
                            for rank in rng(seed).permutation(num_replicas)]
        self._loads = [_ReplicaLoad() for _ in range(num_replicas)]
        self._rr_next = 0
        #: session-affinity pins: ``session_id -> replica index``.
        self._sessions: dict[int, int] = {}
        #: Failed replicas (fault injection): excluded from every policy's
        #: candidate set until :meth:`mark_up`.  Empty on fault-free serves,
        #: so health filtering never perturbs their routing.
        self._down: set[int] = set()

    # ------------------------------------------------------------------ #
    # replica health (driven by repro.faults.FaultCoordinator)
    # ------------------------------------------------------------------ #
    def mark_down(self, index: int) -> None:
        """Remove replica ``index`` from every policy's candidate set."""
        if not 0 <= index < self.num_replicas:
            raise ConfigurationError(
                f"replica {index} out of range for {self.num_replicas} "
                f"replicas"
            )
        self._down.add(index)

    def mark_up(self, index: int) -> None:
        """Re-admit a recovered replica as a routing candidate.

        The replica rejoins with whatever load estimates it had (stale
        in-flight entries retire on their own horizon) — the policies see
        it as lightly loaded, which is what a cold rejoin looks like.
        """
        self._down.discard(index)

    # ------------------------------------------------------------------ #
    def assign(self, request: Request,
               service_estimates: list[float]) -> int:
        """Pick the replica ``request`` joins; update dispatch state.

        ``service_estimates[i]`` is the estimated seconds replica ``i``
        would spend serving the request alone (see
        :meth:`~repro.cluster.group.ReplicaGroup.estimate_service_time`).
        """
        if len(service_estimates) != self.num_replicas:
            raise ConfigurationError(
                f"need one service estimate per replica "
                f"({self.num_replicas}), got {len(service_estimates)}"
            )
        if len(self._down) >= self.num_replicas:
            raise ConfigurationError(
                "every replica is marked down; the fault coordinator parks "
                "arrivals instead of routing them during a total outage"
            )
        clock = request.arrival_time
        if self.policy == "round-robin":
            index = self._rr_next
            while index in self._down:
                index = (index + 1) % self.num_replicas
            self._rr_next = (index + 1) % self.num_replicas
        elif self.policy == "jsq":
            index = self._argmin(
                lambda i: self._loads[i].outstanding_tokens(clock))
        elif self.policy == "session-affinity":
            session_id = getattr(request, "session_id", None)
            index = self._sessions.get(session_id) if session_id is not None \
                else None
            if index is not None and index in self._down:
                # The session's pinned replica failed: its retained prefix
                # is gone anyway (failures flush the cache), so the session
                # is re-placed like a new one.
                index = None
            if index is None:
                # New session (or a plain request): place by JSQ.
                index = self._argmin(
                    lambda i: self._loads[i].outstanding_tokens(clock))
            if session_id is not None:
                if getattr(request, "final_turn", True):
                    self._sessions.pop(session_id, None)
                else:
                    self._sessions[session_id] = index
        else:  # least-loaded
            index = self._argmin(
                lambda i: max(clock, self._loads[i].busy_until)
                + service_estimates[i])
        load = self._loads[index]
        # Drop entries that drained before this arrival: keeps the router's
        # state bounded by the in-flight work (not the trace length), which
        # is what lets million-request streams route in O(1) memory.
        load.retire(clock)
        load.in_flight.append((clock + service_estimates[index],
                               request.max_seq_len))
        load.busy_until = max(clock, load.busy_until) \
            + service_estimates[index]
        load.dispatched += 1
        return index

    def _argmin(self, score) -> int:
        candidates = (range(self.num_replicas) if not self._down
                      else [i for i in range(self.num_replicas)
                            if i not in self._down])
        return min(candidates,
                   key=lambda i: (score(i), self._preference[i]))

    # ------------------------------------------------------------------ #
    @property
    def dispatch_counts(self) -> list[int]:
        """Requests dispatched to each replica so far."""
        return [load.dispatched for load in self._loads]
