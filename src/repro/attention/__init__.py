"""Attention policies (dense, local, strided, H2O, SWA, Belady oracle)."""

from repro.attention.base import (
    AttentionPolicy,
    ObservingPolicy,
    SelectionBudget,
    ensure_last_token,
)
from repro.attention.variants import (
    POLICY_FACTORIES,
    BeladyOraclePolicy,
    DenseAttentionPolicy,
    H2OAttentionPolicy,
    LocalAttentionPolicy,
    StridedAttentionPolicy,
    SWAAttentionPolicy,
    make_policy,
)

__all__ = [
    "POLICY_FACTORIES",
    "AttentionPolicy",
    "BeladyOraclePolicy",
    "DenseAttentionPolicy",
    "H2OAttentionPolicy",
    "LocalAttentionPolicy",
    "ObservingPolicy",
    "SWAAttentionPolicy",
    "SelectionBudget",
    "StridedAttentionPolicy",
    "ensure_last_token",
    "make_policy",
]
