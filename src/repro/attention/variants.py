"""Concrete attention policies: dense, local, strided, H2O, and SWA.

Each policy implements the :class:`~repro.attention.base.AttentionPolicy`
interface.  They correspond to the methods compared throughout the paper:

* dense — the exact attention baseline;
* local — Longformer-style sliding window over the most recent tokens [3];
* strided — SparseTransformer-style fixed-stride pattern [8];
* H2O — heavy-hitter tokens ranked by *global* accumulated attention [43];
* SWA — ALISA's mixture of locally static and globally dynamic tokens.
"""

from __future__ import annotations

import numpy as np

from repro._common import ConfigurationError, round_half_up, validate_fraction
from repro.attention.base import (
    AttentionPolicy,
    ObservingPolicy,
    SelectionBudget,
    ensure_last_token,
)
from repro.core.swa import SWAConfig, local_attention_window, select_sparse_tokens


class DenseAttentionPolicy(AttentionPolicy):
    """Exact attention: every cached token participates."""

    name = "dense"

    def select(self, layer_idx: int, seq_len: int) -> None:
        self._check_layer(layer_idx)
        return None


class LocalAttentionPolicy(AttentionPolicy):
    """Sliding-window attention over the most recent tokens (Longformer)."""

    name = "local"

    def __init__(self, budget: SelectionBudget) -> None:
        super().__init__()
        self.budget = budget

    def select(self, layer_idx: int, seq_len: int) -> np.ndarray:
        self._check_layer(layer_idx)
        keep = self.budget.num_kept(seq_len)
        return np.arange(seq_len - keep, seq_len)


class StridedAttentionPolicy(AttentionPolicy):
    """Fixed-stride attention pattern (SparseTransformer).

    Keeps every ``stride``-th token counting backwards from the current one,
    where the stride is chosen so the kept fraction matches the budget.
    """

    name = "strided"

    def __init__(self, budget: SelectionBudget) -> None:
        super().__init__()
        self.budget = budget

    def select(self, layer_idx: int, seq_len: int) -> np.ndarray:
        self._check_layer(layer_idx)
        keep = self.budget.num_kept(seq_len)
        if keep >= seq_len:
            return np.arange(seq_len)
        stride = max(1, int(np.ceil(seq_len / keep)))
        # Count backwards from the newest token so the current token is kept.
        indices = np.arange(seq_len - 1, -1, -stride)[:keep]
        return ensure_last_token(indices, seq_len)


class H2OAttentionPolicy(ObservingPolicy):
    """Heavy-Hitter Oracle policy [43].

    Keeps half of the budget as the most recent tokens and half as the
    positions with the largest attention weight accumulated over the *entire*
    generation so far (the global attention-weight sum), which is the key
    difference from SWA's local sum.
    """

    name = "h2o"

    def __init__(self, budget: SelectionBudget, recent_fraction: float = 0.5,
                 history_window: int = 128) -> None:
        super().__init__(history_window=history_window)
        validate_fraction(recent_fraction=recent_fraction)
        self.budget = budget
        self.recent_fraction = recent_fraction

    def select(self, layer_idx: int, seq_len: int) -> np.ndarray:
        self._check_layer(layer_idx)
        keep = self.budget.num_kept(seq_len)
        num_recent = max(1, round_half_up(keep * self.recent_fraction))
        num_recent = min(num_recent, seq_len)
        num_heavy = min(keep - num_recent, seq_len - num_recent)

        recent = np.arange(seq_len - num_recent, seq_len)
        if num_heavy <= 0:
            return ensure_last_token(recent, seq_len)

        totals = self.accumulated_weights(layer_idx, seq_len).copy()
        totals[seq_len - num_recent:] = -np.inf
        heavy = np.argpartition(totals, -num_heavy)[-num_heavy:]
        return ensure_last_token(np.concatenate([recent, heavy]), seq_len)


class SWAAttentionPolicy(ObservingPolicy):
    """ALISA's Sparse Window Attention policy (Algorithm 1).

    Ranks globally dynamic tokens by the attention weight received from the
    most recent ``k`` queries only (the local attention sum), and always
    keeps the ``k`` most recent tokens.
    """

    name = "swa"

    def __init__(self, config: SWAConfig, history_window: int = 128) -> None:
        super().__init__(history_window=history_window)
        self.config = config

    @classmethod
    def from_sparsity(cls, kv_sparsity: float, **kwargs) -> "SWAAttentionPolicy":
        return cls(SWAConfig.from_sparsity(kv_sparsity), **kwargs)

    def select(self, layer_idx: int, seq_len: int) -> np.ndarray:
        self._check_layer(layer_idx)
        window = local_attention_window(seq_len, self.config)
        local_sum = self.local_attention_sum(layer_idx, seq_len, window)
        selection = select_sparse_tokens(local_sum, seq_len, self.config)
        return ensure_last_token(selection.indices, seq_len)


class BeladyOraclePolicy(AttentionPolicy):
    """Belady's oracle policy, used as an upper bound in analysis.

    Requires the *future* dense attention weights of the run (an oracle);
    keeps the tokens that will receive the most attention from future
    queries.  The paper discusses this policy as impractical (Section III-C);
    it is implemented here for comparison experiments only.
    """

    name = "belady"

    def __init__(self, budget: SelectionBudget,
                 future_weights: dict[int, np.ndarray]) -> None:
        super().__init__()
        self.budget = budget
        #: Mapping layer index -> dense attention weight matrix (n, n) for
        #: the full run, observed from a prior dense pass.
        self.future_weights = future_weights

    def select(self, layer_idx: int, seq_len: int) -> np.ndarray:
        self._check_layer(layer_idx)
        keep = self.budget.num_kept(seq_len)
        matrix = self.future_weights.get(layer_idx)
        if matrix is None:
            raise ConfigurationError(
                f"no oracle weights registered for layer {layer_idx}"
            )
        future = matrix[seq_len:, :seq_len]
        if future.size == 0:
            return np.arange(max(0, seq_len - keep), seq_len)
        utility = future.sum(axis=0)
        top = np.argpartition(utility, -min(keep, seq_len))[-keep:]
        return ensure_last_token(top, seq_len)


#: Registry of policy constructors keyed by the names used in experiments.
POLICY_FACTORIES = {
    "dense": lambda kv_sparsity=0.0, **kw: DenseAttentionPolicy(),
    "local": lambda kv_sparsity, **kw: LocalAttentionPolicy(
        SelectionBudget.from_sparsity(kv_sparsity)),
    "strided": lambda kv_sparsity, **kw: StridedAttentionPolicy(
        SelectionBudget.from_sparsity(kv_sparsity)),
    "h2o": lambda kv_sparsity, **kw: H2OAttentionPolicy(
        SelectionBudget.from_sparsity(kv_sparsity), **kw),
    "swa": lambda kv_sparsity, **kw: SWAAttentionPolicy.from_sparsity(
        kv_sparsity, **kw),
}


def make_policy(name: str, kv_sparsity: float = 0.0, **kwargs) -> AttentionPolicy:
    """Instantiate a policy by name with the requested KV sparsity."""
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown attention policy {name!r}; known: {sorted(POLICY_FACTORIES)}"
        ) from exc
    return factory(kv_sparsity=kv_sparsity, **kwargs)
