"""Shared interface for KV-cache attention policies.

A *policy* decides, at every decoding step and for every layer, which cached
token positions participate in attention.  The functional transformer calls:

* :meth:`AttentionPolicy.select` before computing attention, to obtain the
  kept token indices (``None`` means "keep everything" — dense attention);
* :meth:`AttentionPolicy.observe` after computing attention, handing the
  policy the attention weights it may need to rank tokens at future steps
  (H2O's global sums, SWA's local sums).

Policies are stateful per inference run; call :meth:`reset` before reuse.
The selection is shared across the batch dimension (weights are averaged
over batch and heads before ranking), matching the per-sequence evaluation
protocol used by the paper's accuracy experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._common import ConfigurationError, round_half_up, validate_fraction


@dataclass(frozen=True)
class SelectionBudget:
    """How many cached tokens a policy may keep at a given step.

    ``keep_ratio`` is the paper's *caching ratio* ``r``; ``kv_sparsity`` is
    its complement (the paper reports 0–80% KV sparsity).
    """

    keep_ratio: float

    def __post_init__(self) -> None:
        validate_fraction(keep_ratio=self.keep_ratio)

    @property
    def kv_sparsity(self) -> float:
        return 1.0 - self.keep_ratio

    @classmethod
    def from_sparsity(cls, kv_sparsity: float) -> "SelectionBudget":
        validate_fraction(kv_sparsity=kv_sparsity)
        return cls(keep_ratio=1.0 - kv_sparsity)

    def num_kept(self, seq_len: int) -> int:
        """Number of tokens to keep out of ``seq_len`` (at least 1)."""
        if seq_len <= 0:
            raise ConfigurationError("seq_len must be positive")
        return max(1, min(seq_len, round_half_up(seq_len * self.keep_ratio)))


class AttentionPolicy(ABC):
    """Base class for token-selection policies over the KV cache."""

    #: Human-readable identifier used by experiment outputs.
    name: str = "base"

    def __init__(self) -> None:
        self._num_layers: int | None = None

    def reset(self, num_layers: int) -> None:
        """Clear any per-run state and prepare for ``num_layers`` layers."""
        self._num_layers = num_layers

    @abstractmethod
    def select(self, layer_idx: int, seq_len: int) -> np.ndarray | None:
        """Return kept token positions (sorted, unique) or ``None`` for all.

        ``seq_len`` counts every cached token including the one produced at
        the current step; the final position (``seq_len - 1``) must always be
        kept so that the query can attend to itself.
        """

    def observe(self, layer_idx: int, positions: np.ndarray,
                weights: np.ndarray) -> None:
        """Record the attention weights of the step that just executed.

        ``positions`` holds the absolute token indices of the attended keys
        (length ``m``); ``weights`` has shape ``(batch, heads, q_len, m)``.
        The default implementation ignores observations; ranking policies
        override this.
        """

    def _check_layer(self, layer_idx: int) -> None:
        if self._num_layers is None:
            raise ConfigurationError(
                f"policy {self.name!r} used before reset(num_layers)"
            )
        if not 0 <= layer_idx < self._num_layers:
            raise ConfigurationError(
                f"layer index {layer_idx} out of range [0, {self._num_layers})"
            )


class ObservingPolicy(AttentionPolicy):
    """Policy base class that accumulates per-layer attention statistics.

    Maintains, per layer:

    * ``totals`` — accumulated attention weight received by every absolute
      token position over the whole run (H2O's heavy-hitter statistic);
    * ``history`` — a bounded deque of recent per-step attention rows
      (SWA's local attention window statistic).

    Weights are reduced by averaging over batch and heads, and summing over
    the query positions of the step (so a prefill over ``s`` tokens counts
    each of its ``s`` rows).
    """

    def __init__(self, history_window: int = 128) -> None:
        super().__init__()
        if history_window <= 0:
            raise ConfigurationError("history_window must be positive")
        self.history_window = history_window
        self._totals: list[np.ndarray] = []
        self._history: list[deque] = []

    def reset(self, num_layers: int) -> None:
        super().reset(num_layers)
        self._totals = [np.zeros(0) for _ in range(num_layers)]
        self._history = [deque(maxlen=self.history_window) for _ in range(num_layers)]

    def observe(self, layer_idx: int, positions: np.ndarray,
                weights: np.ndarray) -> None:
        self._check_layer(layer_idx)
        positions = np.asarray(positions, dtype=int)
        if weights.ndim != 4:
            raise ConfigurationError(
                f"expected weights of shape (batch, heads, q, keys); got "
                f"{weights.shape}"
            )
        if weights.shape[-1] != positions.size:
            raise ConfigurationError(
                "weights last dimension does not match number of positions"
            )
        reduced = weights.mean(axis=(0, 1))  # (q_len, m)
        max_pos = int(positions.max()) + 1 if positions.size else 0
        self._grow_totals(layer_idx, max_pos)
        for row in reduced:
            dense_row = np.zeros(max_pos)
            dense_row[positions] = row
            self._history[layer_idx].append(dense_row)
            self._totals[layer_idx][:max_pos] += dense_row

    def _grow_totals(self, layer_idx: int, size: int) -> None:
        current = self._totals[layer_idx]
        if current.size < size:
            grown = np.zeros(size)
            grown[: current.size] = current
            self._totals[layer_idx] = grown

    def accumulated_weights(self, layer_idx: int, seq_len: int) -> np.ndarray:
        """Attention weight accumulated by each position since the run began."""
        self._check_layer(layer_idx)
        out = np.zeros(seq_len)
        totals = self._totals[layer_idx]
        n = min(seq_len, totals.size)
        out[:n] = totals[:n]
        return out

    def local_attention_sum(self, layer_idx: int, seq_len: int,
                            window: int) -> np.ndarray:
        """Sum of the last ``window`` observed attention rows per position.

        This is the paper's local attention sum ``S`` (Algorithm 1, line 2),
        computed from the most recent steps rather than the full history.
        """
        self._check_layer(layer_idx)
        out = np.zeros(seq_len)
        history = self._history[layer_idx]
        if not history or window <= 0:
            return out
        recent = list(history)[-window:]
        for row in recent:
            n = min(seq_len, row.size)
            out[:n] += row[:n]
        return out


def ensure_last_token(indices: np.ndarray, seq_len: int) -> np.ndarray:
    """Guarantee the current token (``seq_len - 1``) is part of the selection."""
    last = seq_len - 1
    idx = np.unique(np.asarray(indices, dtype=int))
    if last not in idx:
        idx = np.append(idx, last)
    return np.sort(idx)
