"""KV-cache data structures (token-level, paged, head-split)."""

from repro.kvcache.cache import LayerKVCache, ModelKVCache

__all__ = ["LayerKVCache", "ModelKVCache"]
