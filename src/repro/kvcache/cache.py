"""Token-level KV cache for the functional (NumPy-executable) model.

The cache stores the key/value tensors produced at every decoding step, at
the granularity of a single token — the granularity ALISA schedules at
(Table I in the paper).  Sparse attention variants do not *delete* entries
here; they select which cached tokens participate in attention.  Deletion is
modelled separately by the system-level simulator, because the functional
model needs all tokens available to emulate "recompute on demand".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._common import ConfigurationError


@dataclass
class LayerKVCache:
    """KV cache for a single attention layer.

    Keys and values are stored as arrays of shape
    ``(batch, seq_len, num_heads, head_dim)`` and grown by appending along
    the sequence axis.  When ``quantization`` is set, every appended tensor
    is stored through a quantize/de-quantize round trip, emulating ALISA's
    compressed KV storage (Section V-B) in the functional model.
    """

    batch_size: int
    num_heads: int
    head_dim: int
    quantization: object | None = None
    _keys: np.ndarray | None = field(default=None, repr=False)
    _values: np.ndarray | None = field(default=None, repr=False)

    @property
    def seq_len(self) -> int:
        """Number of cached token positions."""
        return 0 if self._keys is None else self._keys.shape[1]

    @property
    def keys(self) -> np.ndarray:
        if self._keys is None:
            raise ConfigurationError("KV cache is empty; nothing cached yet")
        return self._keys

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            raise ConfigurationError("KV cache is empty; nothing cached yet")
        return self._values

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append new per-token keys/values along the sequence axis."""
        expected = (self.batch_size, keys.shape[1], self.num_heads, self.head_dim)
        if keys.shape != expected or values.shape != expected:
            raise ConfigurationError(
                f"KV append shape mismatch: keys {keys.shape}, values "
                f"{values.shape}, expected {expected}"
            )
        if self.quantization is not None:
            from repro.core.compression import roundtrip_kv

            keys, values = roundtrip_kv(keys, values, self.quantization)
        if self._keys is None:
            self._keys = keys.copy()
            self._values = values.copy()
        else:
            self._keys = np.concatenate([self._keys, keys], axis=1)
            self._values = np.concatenate([self._values, values], axis=1)

    def gather(self, indices: np.ndarray | list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Pack the KV tensors of the selected token positions into dense
        arrays (the gather operation of Algorithm 1, line 6)."""
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1:
            raise ConfigurationError("gather indices must be 1-D")
        if idx.size and (idx.min() < 0 or idx.max() >= self.seq_len):
            raise ConfigurationError(
                f"gather index out of range [0, {self.seq_len}): {idx}"
            )
        return self.keys[:, idx], self.values[:, idx]

    def size_bytes(self, dtype_bytes: float = 2.0) -> float:
        """Total bytes of cached KV tensors at the given element width."""
        if self._keys is None:
            return 0.0
        return 2.0 * dtype_bytes * float(np.prod(self._keys.shape))

    def clone(self) -> "LayerKVCache":
        """Deep copy of this cache (used by what-if experiments)."""
        copy = LayerKVCache(self.batch_size, self.num_heads, self.head_dim)
        if self._keys is not None:
            copy._keys = self._keys.copy()
            copy._values = self._values.copy()
        return copy


class ModelKVCache:
    """Per-layer collection of :class:`LayerKVCache` for a whole model."""

    def __init__(self, num_layers: int, batch_size: int, num_heads: int,
                 head_dim: int, quantization: object | None = None) -> None:
        if num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        self.num_layers = num_layers
        self.batch_size = batch_size
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.quantization = quantization
        self.layers = [
            LayerKVCache(batch_size, num_heads, head_dim, quantization)
            for _ in range(num_layers)
        ]

    def __getitem__(self, layer_idx: int) -> LayerKVCache:
        return self.layers[layer_idx]

    def __len__(self) -> int:
        return self.num_layers

    @property
    def seq_len(self) -> int:
        """Cached sequence length (identical across layers by construction)."""
        return self.layers[0].seq_len

    def size_bytes(self, dtype_bytes: float = 2.0) -> float:
        return sum(layer.size_bytes(dtype_bytes) for layer in self.layers)

    def clone(self) -> "ModelKVCache":
        copy = ModelKVCache(
            self.num_layers, self.batch_size, self.num_heads, self.head_dim
        )
        copy.layers = [layer.clone() for layer in self.layers]
        return copy
